/// \file query_service.h
/// \brief The concurrent query-serving core: owns the catalog, the
/// on-demand text indexes and the materialization cache, and executes
/// keyword searches and SpinQL strategies on behalf of many clients.
///
/// Request lifecycle (docs/serving.md):
///   1. a RequestContext is minted (deadline from the request, fresh or
///      client-supplied CancelToken, priority);
///   2. the admission controller grants a slot (FIFO per class) or sheds
///      with Overloaded; queue wait is metered;
///   3. the request context is installed as the thread's ambient context
///      and the query executes through exactly the same library entry
///      points (Searcher::Search / spinql::Evaluator) a direct caller
///      would use — results are bit-identical to library calls;
///   4. outcome, latency, queue wait and per-request work counters roll
///      up into ServiceMetrics (JSON-snapshot exportable).
///
/// Thread safety: every public method may be called from any number of
/// threads concurrently. The service assumes sole ownership of its
/// Catalog mutations (RegisterCollection) happen-before serving starts.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "engine/materialization_cache.h"
#include "exec/request_context.h"
#include "ingest/live_table.h"
#include "ir/index_snapshot.h"
#include "ir/searcher.h"
#include "obs/metrics_registry.h"
#include "obs/span_wire.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/metrics.h"
#include "server/slowlog.h"
#include "shard/global_stats.h"
#include "spinql/evaluator.h"
#include "storage/catalog.h"

namespace spindle {
namespace server {

/// \brief Service-level configuration.
struct QueryServiceOptions {
  AdmissionController::Options admission;
  /// Applied to requests that do not carry their own deadline; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Engine threads per query (ExecContext); 0 = process default.
  int threads = 0;
  /// Materialization cache budget.
  size_t cache_budget_bytes = 256u << 20;
  /// Analyzer for keyword search.
  AnalyzerOptions analyzer;
  /// Trace every request (per-request obs::Tracer carried through the
  /// engine). Off by default — tracing is also available per request via
  /// RequestOptions::trace or the TRACE wire command. SPINDLE_TRACE=1
  /// turns this on in spindle_serve.
  bool trace_requests = false;
  /// How many recent request traces are retained for Chrome export.
  size_t trace_log_capacity = 64;
  /// Delta size (added/updated docs + deletions) at which a live-written
  /// collection is compacted in the background.
  size_t compact_threshold = 1024;
  /// Disable to compact live tables only on FLUSH (deterministic tests).
  bool auto_compact = true;
  /// Slow-query log: capture requests slower than this (ms); 0 = off.
  int64_t slow_query_ms = 0;
  /// Slow-query log: additionally capture every N-th request; 0 = off.
  uint64_t slow_sample = 0;
  /// Slow-query log ring capacity.
  size_t slow_log_capacity = 128;
};

/// \brief Common per-request envelope.
struct RequestOptions {
  /// Relative deadline in milliseconds; 0 uses the service default,
  /// negative disables the deadline explicitly.
  int64_t deadline_ms = 0;
  Priority priority = Priority::kInteractive;
  /// Optional client-held token for explicit cancellation; when null the
  /// service mints one internally (deadline enforcement needs a token).
  CancelTokenPtr token;
  /// Trace this one request even when the service-wide switch is off
  /// (the TRACE wire command sets this).
  bool trace = false;
  /// Distributed tracing: the coordinator's trace id and parent span id
  /// (from the wire `tid=<hex>:<span>` token). Non-zero trace id forces
  /// tracing for this request and retains its tracer for `TRACEPULL
  /// <hex>` so the coordinator can splice this shard's spans into its
  /// own timeline.
  uint64_t foreign_trace_id = 0;
  uint64_t foreign_parent_span = 0;
};

/// \brief Per-request accounting returned with every response.
struct RequestStats {
  uint64_t latency_us = 0;     ///< admission + execution, end to end
  uint64_t queue_wait_us = 0;  ///< time spent queued in admission
  uint64_t trace_id = 0;       ///< 0 when the request was not traced
  Searcher::Stats search;      ///< this call's searcher counters
};

struct SearchRequest {
  std::string collection;  ///< catalog name of a (docID, text, ...) table
  std::string query;
  SearchOptions options;
  RequestOptions request;
};

struct SpinqlRequest {
  std::string text;  ///< one SpinQL expression
  RequestOptions request;
};

/// \brief One live write (ADD / UPDATE / DELETE) against a registered
/// collection. The response relation is a single (epoch: int64) row —
/// the catalog epoch at which the write became searchable.
struct WriteRequest {
  std::string collection;
  ingest::WriteOp op;
  RequestOptions request;
};

/// \brief Forced compaction + quiesce of a live collection. The response
/// relation is one (epoch: int64, docs: int64) row: the epoch of the
/// compacted version and the merged collection size.
struct FlushRequest {
  std::string collection;
  RequestOptions request;
};

/// \brief A sharded search, as dispatched by a ShardCoordinator: the
/// query is already analyzed and resolved against the *global* dictionary
/// (terms in query order with full-collection df/cf), so the shard scores
/// its partition with global statistics — the invariant that makes the
/// merged distributed top-k bit-identical to single-node ranking.
struct ShardSearchRequest {
  std::string collection;
  QueryGlobalStats global;
  SearchOptions options;  ///< top_k > 0, no phrase boost
  RequestOptions request;
};

struct QueryResponse {
  RelationPtr rows;  ///< result relation (schema depends on the call)
  RequestStats stats;
  /// The request's full span record when it was traced (service-wide
  /// trace_requests or per-request RequestOptions::trace); null
  /// otherwise. RenderTree() gives the operator tree, ExportChromeTrace()
  /// the Perfetto-loadable JSON.
  std::shared_ptr<const obs::Tracer> trace;
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});
  ~QueryService() = default;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// \brief Registers a (docID, text[, ...]) collection for keyword
  /// search and SpinQL RelRefs. Not safe to call concurrently with
  /// serving (load collections first, then serve).
  void RegisterCollection(const std::string& name, RelationPtr docs);

  /// \brief Keyword search against a registered collection. The result
  /// relation is bit-identical to calling Searcher::Search directly with
  /// the same options.
  Result<QueryResponse> Search(const SearchRequest& req);

  /// \brief Applies one live write. The first write to a collection
  /// promotes it to a live table (delta index + background compaction);
  /// subsequent searches merge the delta at query time and stay
  /// bit-identical to a cold build over the merged logical collection.
  /// ADD of a live docID fails AlreadyExists; UPDATE/DELETE of an absent
  /// docID fail NotFound. Full admission / deadline / metrics lifecycle.
  Result<QueryResponse> Write(const WriteRequest& req);

  /// \brief Forces compaction of a live collection and waits for it:
  /// afterwards the delta is empty, the compacted relation and index are
  /// registered, and every query is served from the main index alone.
  /// No-op (current epoch returned) on a clean or never-written table.
  Result<QueryResponse> Flush(const FlushRequest& req);

  /// \brief Live ingestion counters for `collection`; zeros when the
  /// collection has never been written to.
  ingest::LiveTable::Stats LiveStats(const std::string& collection) const;

  /// \brief Executes one sharded search over this server's partition with
  /// the request's shipped global statistics (full admission / deadline /
  /// metrics lifecycle, same as Search). The response holds this shard's
  /// local top-k scored with *global* statistics; the coordinator merges
  /// the shards' lists into the final ranking.
  Result<QueryResponse> SearchSharded(const ShardSearchRequest& req);

  /// \brief Installs the full-collection statistics for `collection`
  /// (sharded serving). Like RegisterCollection, not safe concurrently
  /// with serving — install statistics before the server starts. Stats
  /// whose analyzer differs from this service's are rejected.
  Status SetGlobalStats(const std::string& collection,
                        shard::GlobalStatsPtr stats);

  /// \brief The installed statistics for `collection`, or null.
  shard::GlobalStatsPtr GetGlobalStats(const std::string& collection) const;

  /// \brief Statistics of this server's *current* partition of
  /// `collection` (the GSTATSL wire command). After FLUSH a coordinator
  /// merges these per-shard answers into fresh full-collection
  /// statistics, restoring the exact distributed ranking.
  Result<shard::GlobalStatsPtr> ComputeLocalStats(
      const std::string& collection);

  /// \brief Evaluates one SpinQL expression. The result relation is
  /// bit-identical to spinql::Evaluator::EvalExpression on the same
  /// catalog. Parse and evaluation errors surface as Status (never
  /// terminate the process).
  Result<QueryResponse> EvalSpinql(const SpinqlRequest& req);

  /// \brief Persists the catalog plus every buildable text index to a
  /// snapshot file (storage/snapshot.h format). Indexes are built first
  /// if needed — saving right after RegisterCollection writes a
  /// fully-indexed snapshot; tables that are not (docID, text) collections
  /// are stored without an index. Not safe concurrently with serving.
  Status SaveSnapshot(const std::string& path);

  /// \brief Maps a snapshot and installs its relations and indexes:
  /// subsequent searches hit the index cache and serve without
  /// re-tokenizing a single document. Indexes whose analyzer differs from
  /// this service's are dropped (the searcher rebuilds on demand rather
  /// than serve a different term space). Not safe concurrently with
  /// serving; the catalog is untouched on error.
  Status LoadSnapshot(const std::string& path,
                      SnapshotLoadInfo* info = nullptr);

  /// \brief JSON snapshot of the service-wide metrics (request outcomes,
  /// latency/queue-wait percentiles, searcher and materialization-cache
  /// counters, and the tracer rollup's top-N slowest operators).
  std::string MetricsJson();

  /// \brief Prometheus text exposition of every registered metric (the
  /// METRICS wire command). Naming scheme in docs/observability.md.
  std::string MetricsPrometheus();

  /// \brief One-line health row for probes (the HEALTH wire command):
  /// `ready=1 degraded=<0|1> collections=<n> epoch=<max live epoch>
  /// delta_docs=<n> inflight=<n> queued=<n> shed=<n>`. Cheap and served
  /// without admission, so it answers even on a saturated server.
  std::string HealthRow();

  /// \brief The serialized span payload of a retained trace: `id` is
  /// either a foreign (coordinator-minted) trace id propagated via the
  /// wire `tid=` token, or a shard-local trace id. NotFound once the
  /// bounded retention window has evicted it.
  Result<std::vector<std::string>> PullTraceRows(uint64_t id) const;

  /// \brief Slow-query log rows, oldest first (the SLOWLOG command).
  std::vector<std::string> SlowLogRows() const { return slowlog_.RenderRows(); }
  const SlowQueryLog& slowlog() const { return slowlog_; }

  /// \brief Chrome trace-event JSON of the retained recent request
  /// traces (up to options().trace_log_capacity), merged onto one
  /// timeline — one Chrome "process" per request. Empty trace list
  /// yields a valid, empty trace document.
  std::string ExportChromeTraceJson() const;

  /// \brief Since-start rollups of every traced span (the STATS
  /// "top_operators" source).
  const obs::TraceAggregator& trace_aggregator() const {
    return trace_agg_;
  }

  Catalog& catalog() { return catalog_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  AdmissionController& admission() { return admission_; }
  const QueryServiceOptions& options() const { return opts_; }

 private:
  /// Builds the RequestContext for one call (deadline resolution, token
  /// minting).
  RequestContext MakeContext(const RequestOptions& ro) const;

  /// Admission + ambient-context installation + metrics + tracing +
  /// slow-query logging around `body`. When the request is traced,
  /// `*trace_out` (if non-null) receives the request's tracer. `kind`
  /// labels the request class for the slow log; `text_fn` renders its
  /// query text and is only invoked when an entry is actually recorded.
  Result<RelationPtr> RunAdmitted(
      const RequestOptions& ro, RequestStats* stats,
      std::shared_ptr<const obs::Tracer>* trace_out, const char* kind,
      const std::function<std::string()>& text_fn,
      const std::function<Result<RelationPtr>()>& body);

  /// Registers the scrape-time gauges (cache, catalog bytes, per-
  /// collection freshness) into registry_. Called once from the ctor.
  void RegisterGauges();

  /// The live table for `collection`, creating it on first write (builds
  /// the main index if not cached). Thread-safe.
  Result<ingest::LiveTable*> GetOrCreateLive(const std::string& collection);

  /// The live table for `collection`, or null when it was never written.
  ingest::LiveTable* FindLive(const std::string& collection) const;

  /// Folds a compaction tracer into the aggregator and the Chrome-export
  /// log (same retention rule as request traces).
  void RetainTrace(const std::shared_ptr<const obs::Tracer>& tracer);

  QueryServiceOptions opts_;
  Catalog catalog_;
  /// Full-collection statistics per collection (sharded serving only;
  /// empty on a single-node server). Mutated only before serving starts,
  /// like catalog registration — read lock-free on the request path.
  shard::GlobalStatsMap global_stats_;
  MaterializationCache cache_;
  Searcher searcher_;
  spinql::Evaluator evaluator_;
  AdmissionController admission_;
  ServiceMetrics metrics_;
  /// Tracing consumers: since-start per-operator rollups and a bounded
  /// log of recent request tracers (Chrome export).
  obs::TraceAggregator trace_agg_;
  mutable std::mutex trace_mu_;
  std::deque<std::shared_ptr<const obs::Tracer>> trace_log_;
  /// Distributed-tracing pull window: recent request tracers keyed by
  /// the id TRACEPULL looks them up under (the foreign coordinator id
  /// when one was propagated, else the tracer's own id). Registered at
  /// mint time so a still-running (e.g. cancelled straggler) request is
  /// already pullable.
  struct PullEntry {
    uint64_t key = 0;
    uint64_t parent_span = 0;
    std::shared_ptr<const obs::Tracer> tracer;
  };
  static constexpr size_t kPullCapacity = 256;
  mutable std::mutex pull_mu_;
  std::deque<PullEntry> pull_log_;
  /// Slow-query exemplars pinned past the rolling pull window, so a
  /// SLOWLOG row's trace id stays retrievable as long as the row itself.
  std::deque<PullEntry> pinned_log_;
  /// Slow-query ring + the unified metrics registry (Prometheus).
  SlowQueryLog slowlog_;
  obs::MetricsRegistry registry_;
  /// Live-written collections (created lazily on first write). The map
  /// only grows; LiveTable itself is internally synchronized.
  mutable std::mutex live_mu_;
  std::map<std::string, std::unique_ptr<ingest::LiveTable>> live_;
};

}  // namespace server
}  // namespace spindle
