#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace spindle {
namespace server {

Status LineClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::Internal("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<std::string> LineClient::ReadLine() {
  char chunk[4096];
  size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::Internal("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

Result<WireResponse> LineClient::Call(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string out = line;
  out += "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::Internal("send failed: connection lost");
    }
    sent += static_cast<size_t>(n);
  }

  SPINDLE_ASSIGN_OR_RETURN(std::string header, ReadLine());
  if (header.rfind("ERR ", 0) == 0) {
    std::string rest = header.substr(4);
    size_t sp = rest.find(' ');
    std::string name = sp == std::string::npos ? rest : rest.substr(0, sp);
    std::string msg = sp == std::string::npos ? "" : rest.substr(sp + 1);
    StatusCode code;
    if (!StatusCodeFromName(name, &code)) code = StatusCode::kInternal;
    return Status(code, std::move(msg));
  }
  if (header.rfind("OK ", 0) != 0) {
    return Status::Internal("malformed response header: " + header);
  }
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(header.c_str() + 3, &end, 10);
  if (errno == ERANGE || end == header.c_str() + 3 || n < 0) {
    return Status::Internal("malformed response count: " + header);
  }
  WireResponse resp;
  // Optional " trace=<id>" token after the count (traced requests).
  if (end != nullptr && std::strncmp(end, " trace=", 7) == 0) {
    resp.trace_id =
        static_cast<uint64_t>(std::strtoull(end + 7, nullptr, 10));
  }
  resp.rows.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    SPINDLE_ASSIGN_OR_RETURN(std::string row, ReadLine());
    resp.rows.push_back(std::move(row));
  }
  return resp;
}

Result<WireResponse> LineClient::Search(const std::string& collection,
                                        size_t k, int64_t deadline_ms,
                                        const std::string& query) {
  return Call("SEARCH " + collection + " " + std::to_string(k) + " " +
              std::to_string(deadline_ms) + " " + query);
}

Result<WireResponse> LineClient::Spinql(int64_t deadline_ms,
                                        const std::string& expression) {
  return Call("SPINQL " + std::to_string(deadline_ms) + " " + expression);
}

Result<WireResponse> LineClient::Trace(int64_t deadline_ms,
                                       const std::string& expression) {
  return Call("TRACE " + std::to_string(deadline_ms) + " " + expression);
}

Result<std::string> LineClient::Stats() {
  SPINDLE_ASSIGN_OR_RETURN(WireResponse resp, Call("STATS"));
  if (resp.rows.size() != 1) {
    return Status::Internal("STATS returned " +
                            std::to_string(resp.rows.size()) + " rows");
  }
  return resp.rows[0];
}

Status LineClient::Ping() {
  Result<WireResponse> resp = Call("PING");
  return resp.ok() ? Status::OK() : resp.status();
}

Status LineClient::Shutdown() {
  Result<WireResponse> resp = Call("SHUTDOWN");
  return resp.ok() ? Status::OK() : resp.status();
}

}  // namespace server
}  // namespace spindle
