#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/trace.h"
#include "shard/wire.h"

namespace spindle {
namespace server {

namespace {

/// "tid=<hex>:<span> " when the calling thread is traced, "" otherwise —
/// the empty case keeps request lines byte-identical to the pre-token
/// protocol.
std::string TracePrefix() {
  obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.tracer == nullptr) return "";
  return shard::FormatTraceToken(ctx.tracer->trace_id(), ctx.span) + " ";
}

}  // namespace

Status LineClient::ConnectOnce(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  const std::string target = host + ":" + std::to_string(port);
  if (opts_.connect_timeout_ms > 0) {
    // Timed connect: non-blocking connect, poll for writability, then
    // check SO_ERROR and restore blocking mode.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      Status st = Status::Unavailable("connect " + target + ": " +
                                      std::strerror(errno));
      Close();
      return st;
    }
    if (rc != 0) {
      pollfd pfd{fd_, POLLOUT, 0};
      int pr = ::poll(&pfd, 1,
                      static_cast<int>(opts_.connect_timeout_ms));
      if (pr <= 0) {
        Close();
        return Status::Unavailable(
            "connect " + target + ": timed out after " +
            std::to_string(opts_.connect_timeout_ms) + "ms");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        Status st = Status::Unavailable("connect " + target + ": " +
                                        std::strerror(err));
        Close();
        return st;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    Status st = Status::Unavailable("connect " + target + ": " +
                                    std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  broken_ = false;
  return SetReadTimeout(opts_.read_timeout_ms);
}

Status LineClient::Connect(const std::string& host, int port) {
  int64_t backoff = std::max<int64_t>(opts_.backoff_ms, 1);
  Status last = Status::OK();
  for (int attempt = 0; attempt <= opts_.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min<int64_t>(backoff * 2, 1000);
    }
    last = ConnectOnce(host, port);
    // Only transient failures are worth a retry; a bad host string or a
    // socket() failure will not improve with backoff.
    if (last.ok() || last.code() != StatusCode::kUnavailable) return last;
  }
  return last;
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status LineClient::SetReadTimeout(int64_t ms) {
  if (fd_ < 0) return Status::OK();
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(std::string("SO_RCVTIMEO: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  char chunk[4096];
  size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired: the backend is up but not answering within
      // budget. The connection is now mid-response, so drop it.
      broken_ = true;
      Close();
      return Status::Unavailable("read timed out waiting for response");
    }
    if (n <= 0) {
      broken_ = true;
      return Status::Internal("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

Result<WireResponse> LineClient::Call(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string out = line;
  out += "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      broken_ = true;
      return Status::Internal("send failed: connection lost");
    }
    sent += static_cast<size_t>(n);
  }

  SPINDLE_ASSIGN_OR_RETURN(std::string header, ReadLine());
  if (header.rfind("ERR ", 0) == 0) {
    std::string rest = header.substr(4);
    size_t sp = rest.find(' ');
    std::string name = sp == std::string::npos ? rest : rest.substr(0, sp);
    std::string msg = sp == std::string::npos ? "" : rest.substr(sp + 1);
    StatusCode code;
    if (!StatusCodeFromName(name, &code)) code = StatusCode::kInternal;
    return Status(code, std::move(msg));
  }
  if (header.rfind("OK ", 0) != 0) {
    return Status::Internal("malformed response header: " + header);
  }
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(header.c_str() + 3, &end, 10);
  if (errno == ERANGE || end == header.c_str() + 3 || n < 0) {
    return Status::Internal("malformed response count: " + header);
  }
  WireResponse resp;
  // Optional ordered header tokens after the count: " trace=<id>", then
  // " partial=1" (degraded scatter-gather answers).
  if (end != nullptr && std::strncmp(end, " trace=", 7) == 0) {
    resp.trace_id =
        static_cast<uint64_t>(std::strtoull(end + 7, &end, 10));
  }
  if (end != nullptr && std::strncmp(end, " partial=1", 10) == 0) {
    resp.partial = true;
  }
  resp.rows.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    SPINDLE_ASSIGN_OR_RETURN(std::string row, ReadLine());
    resp.rows.push_back(std::move(row));
  }
  return resp;
}

Result<WireResponse> LineClient::Search(const std::string& collection,
                                        size_t k, int64_t deadline_ms,
                                        const std::string& query) {
  return Call("SEARCH " + TracePrefix() + collection + " " +
              std::to_string(k) + " " + std::to_string(deadline_ms) + " " +
              query);
}

Result<WireResponse> LineClient::Spinql(int64_t deadline_ms,
                                        const std::string& expression) {
  return Call("SPINQL " + TracePrefix() + std::to_string(deadline_ms) + " " +
              expression);
}

Result<WireResponse> LineClient::Trace(int64_t deadline_ms,
                                       const std::string& expression) {
  return Call("TRACE " + std::to_string(deadline_ms) + " " + expression);
}

Result<std::string> LineClient::Stats() {
  SPINDLE_ASSIGN_OR_RETURN(WireResponse resp, Call("STATS"));
  if (resp.rows.size() != 1) {
    return Status::Internal("STATS returned " +
                            std::to_string(resp.rows.size()) + " rows");
  }
  return resp.rows[0];
}

Status LineClient::Ping() {
  Result<WireResponse> resp = Call("PING");
  return resp.ok() ? Status::OK() : resp.status();
}

Status LineClient::Shutdown() {
  Result<WireResponse> resp = Call("SHUTDOWN");
  return resp.ok() ? Status::OK() : resp.status();
}

Result<WireResponse> LineClient::Add(const std::string& collection,
                                     int64_t doc_id,
                                     const std::string& text) {
  return Call("ADD " + TracePrefix() + collection + " " +
              std::to_string(doc_id) + " " + text);
}

Result<WireResponse> LineClient::Update(const std::string& collection,
                                        int64_t doc_id,
                                        const std::string& text) {
  return Call("UPDATE " + TracePrefix() + collection + " " +
              std::to_string(doc_id) + " " + text);
}

Result<WireResponse> LineClient::Delete(const std::string& collection,
                                        int64_t doc_id) {
  return Call("DELETE " + TracePrefix() + collection + " " +
              std::to_string(doc_id));
}

Result<WireResponse> LineClient::Flush(const std::string& collection) {
  return Call("FLUSH " + TracePrefix() + collection);
}

void LineClientPool::Lease::Release() {
  if (pool_ == nullptr) return;
  if (client_ != nullptr && client_->connected() && !client_->broken()) {
    pool_->Return(key_, std::move(client_));
  } else {
    // Broken or disconnected clients just fall out of scope (closing the
    // socket); the next Acquire dials fresh.
    pool_->Dropped();
  }
  pool_ = nullptr;
  client_.reset();
}

Result<LineClientPool::Lease> LineClientPool::Acquire(
    const std::string& host, int port) {
  const std::string key = host + ":" + std::to_string(port);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<LineClient> client = std::move(it->second.back());
      it->second.pop_back();
      ++reuses_;
      ++outstanding_;
      return Lease(this, key, std::move(client));
    }
  }
  auto client = std::make_unique<LineClient>(opts_.client);
  SPINDLE_RETURN_IF_ERROR(client->Connect(host, port));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++dials_;
    ++outstanding_;
  }
  return Lease(this, key, std::move(client));
}

void LineClientPool::Return(const std::string& key,
                            std::unique_ptr<LineClient> client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  std::vector<std::unique_ptr<LineClient>>& stack = idle_[key];
  if (stack.size() < opts_.max_idle_per_target) {
    stack.push_back(std::move(client));
  }
  // else: over budget — the unique_ptr destructor closes the socket.
}

void LineClientPool::Dropped() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
}

LineClientPool::Stats LineClientPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.dials = dials_;
  s.reuses = reuses_;
  s.outstanding = outstanding_;
  for (const auto& kv : idle_) s.idle += kv.second.size();
  return s;
}

}  // namespace server
}  // namespace spindle
