/// \file client.h
/// \brief Line-protocol client for spindle_serve (see line_server.h for
/// the wire format). Used by the spindle_client binary, the concurrent
/// smoke tests and the CI server-smoke step.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace spindle {
namespace server {

/// \brief One server reply: the data lines of an OK block. An ERR reply
/// is surfaced as the Result's Status (code re-hydrated from the wire).
struct WireResponse {
  std::vector<std::string> rows;
  /// From the optional "OK <n> trace=<id>" header extension; 0 when the
  /// request was not traced.
  uint64_t trace_id = 0;
};

/// \brief Blocking line-protocol client; one TCP connection. Not
/// thread-safe — use one client per thread (connections are cheap).
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept { *this = std::move(other); }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// \brief Connects to a running spindle_serve.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// \brief Sends one request line and reads the full response. A
  /// protocol-level ERR becomes the returned Status; transport errors
  /// are kInternal.
  Result<WireResponse> Call(const std::string& line);

  /// Convenience wrappers over Call().
  Result<WireResponse> Search(const std::string& collection, size_t k,
                              int64_t deadline_ms,
                              const std::string& query);
  Result<WireResponse> Spinql(int64_t deadline_ms,
                              const std::string& expression);
  /// Runs the expression traced; rows are the operator-tree lines.
  Result<WireResponse> Trace(int64_t deadline_ms,
                             const std::string& expression);
  Result<std::string> Stats();
  Status Ping();
  Status Shutdown();

 private:
  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace server
}  // namespace spindle
