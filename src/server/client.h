/// \file client.h
/// \brief Line-protocol client for spindle_serve / spindle_coord (see
/// line_server.h for the wire format). Used by the spindle_client binary,
/// the coordinator's remote shard backends, the concurrent smoke tests
/// and the CI server-smoke step.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spindle {
namespace server {

/// \brief One server reply: the data lines of an OK block. An ERR reply
/// is surfaced as the Result's Status (code re-hydrated from the wire).
struct WireResponse {
  std::vector<std::string> rows;
  /// From the optional "OK <n> trace=<id>" header extension; 0 when the
  /// request was not traced.
  uint64_t trace_id = 0;
  /// From the optional "OK <n> partial=1" header extension: a degraded
  /// scatter-gather answer — some shards failed or missed the deadline
  /// and the result covers the remainder.
  bool partial = false;
};

/// \brief Connection behavior. The defaults match the historical client:
/// a blocking connect and no read timeout — calls wait as long as the
/// server takes. Timeouts and retries exist for the coordinator's remote
/// shard dispatches and for scripted clients that must not hang on a dead
/// backend.
struct LineClientOptions {
  /// Per-attempt connect timeout; 0 = OS default (blocking connect).
  int64_t connect_timeout_ms = 0;
  /// Response-wait timeout per read; 0 = wait forever. An expired read
  /// returns kUnavailable (the backend stopped responding — distinct from
  /// a server-side kDeadlineExceeded, which arrives as an ERR line).
  int64_t read_timeout_ms = 0;
  /// Additional connect attempts after the first fails, with exponential
  /// backoff starting at backoff_ms (50, 100, 200, ... capped at 1s).
  /// Retries apply to Connect() only — requests are never re-sent (a
  /// re-sent search would double-execute on a slow-but-alive server).
  int connect_retries = 0;
  int64_t backoff_ms = 50;
};

/// \brief Blocking line-protocol client; one TCP connection. Not
/// thread-safe — use one client per thread (connections are cheap).
class LineClient {
 public:
  LineClient() = default;
  explicit LineClient(LineClientOptions options)
      : opts_(options) {}
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept { *this = std::move(other); }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      opts_ = other.opts_;
      buffer_ = std::move(other.buffer_);
      broken_ = other.broken_;
      other.fd_ = -1;
      other.broken_ = false;
    }
    return *this;
  }

  /// \brief Connects to a running spindle_serve / spindle_coord,
  /// honoring the configured connect timeout and bounded retry. A
  /// backend that stays unreachable returns kUnavailable.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  /// \brief True after a transport failure mid-request (send failed,
  /// stream closed, read timeout): the connection may hold a partial
  /// response frame and must not carry another request. Server-side ERR
  /// replies do NOT set this — the protocol stream stays clean.
  bool broken() const { return broken_; }
  void Close();

  /// \brief Adjusts the read timeout on the live connection (the
  /// coordinator bounds each dispatch by the request's remaining budget).
  /// No-op when not connected; ms <= 0 clears the timeout.
  Status SetReadTimeout(int64_t ms);

  /// \brief Sends one request line and reads the full response. A
  /// protocol-level ERR becomes the returned Status; transport errors
  /// are kInternal; a read timeout is kUnavailable.
  Result<WireResponse> Call(const std::string& line);

  /// Convenience wrappers over Call(). When the calling thread has an
  /// ambient tracer installed (obs::CurrentTraceContext()), each wrapper
  /// prepends the distributed-trace token (`tid=<hex>:<span>`) so the
  /// server records its spans under the caller's trace — this is how the
  /// coordinator's scatter and write fan-out propagate trace identity.
  /// Untraced callers (the spindle_client binary, untraced serving) emit
  /// byte-identical request lines to the pre-token protocol.
  Result<WireResponse> Search(const std::string& collection, size_t k,
                              int64_t deadline_ms,
                              const std::string& query);
  Result<WireResponse> Spinql(int64_t deadline_ms,
                              const std::string& expression);
  /// Runs the expression traced; rows are the operator-tree lines.
  Result<WireResponse> Trace(int64_t deadline_ms,
                             const std::string& expression);
  Result<std::string> Stats();
  Status Ping();
  Status Shutdown();

  /// Live-write wrappers (docs/ingestion.md). The single response row is
  /// "epoch=<e>" (FLUSH: "epoch=<e> docs=<n>").
  Result<WireResponse> Add(const std::string& collection, int64_t doc_id,
                           const std::string& text);
  Result<WireResponse> Update(const std::string& collection, int64_t doc_id,
                              const std::string& text);
  Result<WireResponse> Delete(const std::string& collection,
                              int64_t doc_id);
  Result<WireResponse> Flush(const std::string& collection);

 private:
  Status ConnectOnce(const std::string& host, int port);
  Result<std::string> ReadLine();

  int fd_ = -1;
  LineClientOptions opts_;
  std::string buffer_;
  bool broken_ = false;
};

/// \brief Thread-safe pool of line-protocol connections, keyed by
/// "host:port". Scatter dispatches and write fan-out check a connection
/// out per call and return it afterwards, so steady-state serving pays
/// zero TCP handshakes instead of one per dispatch.
///
/// Lease is the RAII checkout: on destruction a clean connection goes
/// back to the idle stack (LIFO — the warmest connection is reused
/// first); a broken one (transport failure mid-request, see
/// LineClient::broken()) is closed and dropped, never reused.
class LineClientPool {
 public:
  struct Options {
    LineClientOptions client;
    /// Idle connections retained per target; extra returns are closed.
    size_t max_idle_per_target = 8;
  };

  struct Stats {
    uint64_t dials = 0;        ///< connections established
    uint64_t reuses = 0;       ///< checkouts served from the idle stack
    uint64_t idle = 0;         ///< connections parked across all targets
    uint64_t outstanding = 0;  ///< leases currently checked out
  };

  LineClientPool() = default;
  explicit LineClientPool(Options options) : opts_(options) {}

  LineClientPool(const LineClientPool&) = delete;
  LineClientPool& operator=(const LineClientPool&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(LineClientPool* pool, std::string key,
          std::unique_ptr<LineClient> client)
        : pool_(pool), key_(std::move(key)), client_(std::move(client)) {}
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        key_ = std::move(other.key_);
        client_ = std::move(other.client_);
        other.pool_ = nullptr;
      }
      return *this;
    }

    LineClient* operator->() { return client_.get(); }
    LineClient& operator*() { return *client_; }
    LineClient* get() { return client_.get(); }

   private:
    void Release();

    LineClientPool* pool_ = nullptr;
    std::string key_;
    std::unique_ptr<LineClient> client_;
  };

  /// \brief Checks out a connected client for `host:port`, reusing an
  /// idle connection when one exists and dialing otherwise (with the
  /// pool's client options — timeouts, retries).
  Result<Lease> Acquire(const std::string& host, int port);

  Stats stats() const;

 private:
  friend class Lease;
  void Return(const std::string& key, std::unique_ptr<LineClient> client);
  /// A broken lease fell out of scope without returning its connection.
  void Dropped();

  Options opts_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::unique_ptr<LineClient>>> idle_;
  uint64_t dials_ = 0;
  uint64_t reuses_ = 0;
  uint64_t outstanding_ = 0;
};

}  // namespace server
}  // namespace spindle
