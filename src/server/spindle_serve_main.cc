/// \file spindle_serve_main.cc
/// \brief The spindle_serve binary: a line-protocol TCP front-end over a
/// QueryService (docs/serving.md has a quickstart).
///
///   spindle_serve --generate=50000 --port=7654
///   spindle_serve --generate=50000 --port=0 --port-file=port.txt
///
/// Flags:
///   --port=N               listen port (0 = ephemeral; default 7654)
///   --host=ADDR            listen address (default 127.0.0.1)
///   --port-file=PATH       write the bound port to PATH (for scripts
///                          that start with --port=0)
///   --generate=N           register a synthetic N-doc collection as
///                          "docs" (workload/text_gen.h)
///   --snapshot=PATH        warm restarts: when PATH exists, map it and
///                          serve from it (skips --generate entirely —
///                          no document is re-tokenized); when absent,
///                          build the catalog (--generate) and indexes,
///                          then save them to PATH for the next start
///   --queries-file=PATH    with --generate: write sample query lines
///                          drawn from the generated vocabulary to PATH
///                          (one per line, for scripted clients)
///   --threads=N            engine threads per query (0 = default)
///   --max-inflight=N       admission: concurrent queries (default 4)
///   --max-queue=N          admission: queue cap (default 64)
///   --default-deadline-ms=N  deadline for requests that send 0
///   --trace=0|1            trace every request (per-request spans roll
///                          into STATS top_operators; implied by
///                          --trace-file and by SPINDLE_TRACE=1)
///   --trace-file=PATH      at shutdown, write the retained request
///                          traces as Chrome trace-event JSON to PATH
///                          (load in chrome://tracing or Perfetto)
///
/// SPINDLE_TRACE=1 in the environment is equivalent to --trace=1.
///
/// Shuts down cleanly on the SHUTDOWN command, SIGINT or SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/line_server.h"
#include "server/query_service.h"
#include "workload/text_gen.h"

namespace {

std::sig_atomic_t g_signal_stop = 0;

void HandleSignal(int) { g_signal_stop = 1; }

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using spindle::server::LineServer;
  using spindle::server::LineServerOptions;
  using spindle::server::QueryService;
  using spindle::server::QueryServiceOptions;

  LineServerOptions server_opts;
  server_opts.port = 7654;
  QueryServiceOptions service_opts;
  std::string port_file;
  std::string queries_file;
  std::string trace_file;
  std::string snapshot_path;
  int64_t generate_docs = 0;

  const char* trace_env = std::getenv("SPINDLE_TRACE");
  if (trace_env != nullptr && std::strcmp(trace_env, "1") == 0) {
    service_opts.trace_requests = true;
  }

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--port", &v)) {
      server_opts.port = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--host", &v)) {
      server_opts.host = v;
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (FlagValue(argv[i], "--generate", &v)) {
      generate_docs = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--queries-file", &v)) {
      queries_file = v;
    } else if (FlagValue(argv[i], "--snapshot", &v)) {
      snapshot_path = v;
    } else if (FlagValue(argv[i], "--threads", &v)) {
      service_opts.threads = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-inflight", &v)) {
      service_opts.admission.max_inflight = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-queue", &v)) {
      service_opts.admission.max_queue =
          static_cast<size_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--default-deadline-ms", &v)) {
      service_opts.default_deadline_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--trace", &v)) {
      service_opts.trace_requests = std::atoi(v.c_str()) != 0;
    } else if (FlagValue(argv[i], "--trace-file", &v)) {
      trace_file = v;
      service_opts.trace_requests = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  QueryService service(service_opts);

  // Warm restart: an existing snapshot replaces collection building
  // entirely — relations and indexes are mapped, not rebuilt, and the
  // first query runs without re-tokenizing a single document.
  bool restored = false;
  if (!snapshot_path.empty()) {
    std::FILE* probe = std::fopen(snapshot_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      spindle::SnapshotLoadInfo info;
      spindle::Status st = service.LoadSnapshot(snapshot_path, &info);
      if (!st.ok()) {
        std::fprintf(stderr, "snapshot load failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      restored = true;
      std::fprintf(
          stderr,
          "restored snapshot %s (%zu bytes, %zu relations, %zu indexes)\n",
          snapshot_path.c_str(), info.file_bytes, info.relations,
          info.indexes);
    }
  }

  if (generate_docs > 0) {
    spindle::TextCollectionOptions gen;
    gen.num_docs = generate_docs;
    gen.vocab_size = std::max<int64_t>(2000, generate_docs / 2);
    gen.avg_doc_len = 60;
    if (!restored) {
      auto docs = spindle::GenerateTextCollection(gen);
      if (!docs.ok()) {
        std::fprintf(stderr, "generate failed: %s\n",
                     docs.status().ToString().c_str());
        return 1;
      }
      service.RegisterCollection("docs", docs.MoveValueOrDie());
      std::fprintf(stderr,
                   "registered synthetic collection 'docs' (%lld docs)\n",
                   static_cast<long long>(generate_docs));
    }
    if (!queries_file.empty()) {
      // Vocabulary words are synthetic (base-26 scrambles, not "word7"),
      // so scripted clients need real query terms; dump a sample workload.
      // Queries derive from the generator options alone, so a restored
      // server writes the same workload a cold one would.
      std::FILE* f = std::fopen(queries_file.c_str(), "w");
      if (f != nullptr) {
        for (const std::string& q : spindle::GenerateQueries(gen, 16, 2)) {
          std::fprintf(f, "%s\n", q.c_str());
        }
        std::fclose(f);
      }
    }
  }

  if (!snapshot_path.empty() && !restored) {
    spindle::Status st = service.SaveSnapshot(snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved snapshot %s\n", snapshot_path.c_str());
  }

  LineServer server(&service, server_opts);
  spindle::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "LISTENING %s:%d\n", server_opts.host.c_str(),
               server.port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_signal_stop == 0 && !server.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  if (!trace_file.empty()) {
    std::FILE* f = std::fopen(trace_file.c_str(), "w");
    if (f != nullptr) {
      std::string json = service.ExportChromeTraceJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote trace to %s\n", trace_file.c_str());
    } else {
      std::fprintf(stderr, "could not open trace file %s\n",
                   trace_file.c_str());
    }
  }
  std::fprintf(stderr, "shutdown complete\n%s\n",
               service.MetricsJson().c_str());
  return 0;
}
