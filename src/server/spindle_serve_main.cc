/// \file spindle_serve_main.cc
/// \brief The spindle_serve binary: a line-protocol TCP front-end over a
/// QueryService (docs/serving.md has a quickstart).
///
///   spindle_serve --generate=50000 --port=7654
///   spindle_serve --generate=50000 --port=0 --port-file=port.txt
///
/// Flags:
///   --port=N               listen port (0 = ephemeral; default 7654)
///   --host=ADDR            listen address (default 127.0.0.1)
///   --port-file=PATH       write the bound port to PATH (for scripts
///                          that start with --port=0)
///   --generate=N           register a synthetic N-doc collection as
///                          "docs" (workload/text_gen.h)
///   --snapshot=PATH        warm restarts: when PATH exists, map it and
///                          serve from it (skips --generate entirely —
///                          no document is re-tokenized); when absent,
///                          build the catalog (--generate) and indexes,
///                          then save them to PATH for the next start
///   --queries-file=PATH    with --generate: write sample query lines
///                          drawn from the generated vocabulary to PATH
///                          (one per line, for scripted clients)
///   --threads=N            engine threads per query (0 = default)
///   --max-inflight=N       admission: concurrent queries (default 4)
///   --max-queue=N          admission: queue cap (default 64)
///   --default-deadline-ms=N  deadline for requests that send 0
///   --trace=0|1            trace every request (per-request spans roll
///                          into STATS top_operators; implied by
///                          --trace-file and by SPINDLE_TRACE=1)
///   --trace-file=PATH      at shutdown, write the retained request
///                          traces as Chrome trace-event JSON to PATH
///                          (load in chrome://tracing or Perfetto)
///   --slow-query-ms=N      slow-query log: capture requests slower than
///                          N ms (SLOWLOG wire command; SIGUSR1 dumps the
///                          log to stderr)
///   --slow-sample=N        additionally capture every N-th request
///                          regardless of latency (0 = off)
///
/// Live ingestion (docs/ingestion.md):
///   --compact-threshold=N  delta size that triggers background
///                          compaction (default 1024; 0 compacts only on
///                          FLUSH)
///   --apply-writes=PATH    cold oracle: before serving, apply the
///                          ADD/UPDATE/DELETE lines in PATH (FLUSH lines
///                          are no-ops) to the registered collections by
///                          rebuilding them offline — the server then
///                          serves exactly what a live server serves
///                          after streaming the same writes and FLUSHing
///                          (the CI ingest smoke byte-diffs the two)
///
/// Sharded serving (docs/sharding.md):
///   --num-shards=N         the collection is partitioned N ways
///   --shard-id=I           serve partition I in [0, N): the full
///                          collection is generated deterministically,
///                          the full-collection statistics are computed
///                          and installed, and only partition I is
///                          registered — a spindle_coord in front merges
///                          the shards into bit-identical global top-k
///   --write-shards=PREFIX  offline mode: partition the generated
///                          collection N ways, build each shard's
///                          indexes, and write one snapshot per shard to
///                          PREFIX.shard<i>.snap (each carrying the
///                          full-collection statistics); prints the
///                          paths to stdout and exits. Start the shard
///                          fleet with --snapshot=PREFIX.shard<i>.snap.
///
/// SPINDLE_TRACE=1 in the environment is equivalent to --trace=1.
///
/// Shuts down cleanly on the SHUTDOWN command, SIGINT or SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ingest/delta_index.h"
#include "server/line_server.h"
#include "server/query_service.h"
#include "shard/global_stats.h"
#include "shard/partitioner.h"
#include "workload/text_gen.h"

namespace {

std::sig_atomic_t g_signal_stop = 0;
std::sig_atomic_t g_dump_slowlog = 0;

void HandleSignal(int) { g_signal_stop = 1; }

void HandleSigusr1(int) { g_dump_slowlog = 1; }

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using spindle::server::LineServer;
  using spindle::server::LineServerOptions;
  using spindle::server::QueryService;
  using spindle::server::QueryServiceOptions;

  LineServerOptions server_opts;
  server_opts.port = 7654;
  QueryServiceOptions service_opts;
  std::string port_file;
  std::string queries_file;
  std::string trace_file;
  std::string snapshot_path;
  std::string write_shards_prefix;
  std::string apply_writes_file;
  int64_t generate_docs = 0;
  int64_t shard_id = -1;
  int64_t num_shards = 0;

  const char* trace_env = std::getenv("SPINDLE_TRACE");
  if (trace_env != nullptr && std::strcmp(trace_env, "1") == 0) {
    service_opts.trace_requests = true;
  }

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--port", &v)) {
      server_opts.port = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--host", &v)) {
      server_opts.host = v;
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (FlagValue(argv[i], "--generate", &v)) {
      generate_docs = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--queries-file", &v)) {
      queries_file = v;
    } else if (FlagValue(argv[i], "--snapshot", &v)) {
      snapshot_path = v;
    } else if (FlagValue(argv[i], "--threads", &v)) {
      service_opts.threads = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-inflight", &v)) {
      service_opts.admission.max_inflight = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-queue", &v)) {
      service_opts.admission.max_queue =
          static_cast<size_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--default-deadline-ms", &v)) {
      service_opts.default_deadline_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--trace", &v)) {
      service_opts.trace_requests = std::atoi(v.c_str()) != 0;
    } else if (FlagValue(argv[i], "--trace-file", &v)) {
      trace_file = v;
      service_opts.trace_requests = true;
    } else if (FlagValue(argv[i], "--slow-query-ms", &v)) {
      service_opts.slow_query_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--slow-sample", &v)) {
      service_opts.slow_sample =
          static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--shard-id", &v)) {
      shard_id = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--num-shards", &v)) {
      num_shards = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--write-shards", &v)) {
      write_shards_prefix = v;
    } else if (FlagValue(argv[i], "--compact-threshold", &v)) {
      long long t = std::atoll(v.c_str());
      if (t <= 0) {
        service_opts.auto_compact = false;
      } else {
        service_opts.compact_threshold = static_cast<size_t>(t);
      }
    } else if (FlagValue(argv[i], "--apply-writes", &v)) {
      apply_writes_file = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (shard_id >= 0 &&
      (num_shards <= 0 || shard_id >= num_shards)) {
    std::fprintf(stderr,
                 "--shard-id=%lld requires --num-shards > %lld\n",
                 static_cast<long long>(shard_id),
                 static_cast<long long>(shard_id));
    return 2;
  }

  // Offline shard-snapshot production: partition, index, write, exit.
  if (!write_shards_prefix.empty()) {
    if (generate_docs <= 0 || num_shards <= 0) {
      std::fprintf(stderr,
                   "--write-shards needs --generate=N and "
                   "--num-shards=N\n");
      return 2;
    }
    spindle::TextCollectionOptions gen;
    gen.num_docs = generate_docs;
    gen.vocab_size = std::max<int64_t>(2000, generate_docs / 2);
    gen.avg_doc_len = 60;
    auto docs = spindle::GenerateTextCollection(gen);
    if (!docs.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   docs.status().ToString().c_str());
      return 1;
    }
    spindle::Catalog full;
    full.Register("docs", docs.MoveValueOrDie());
    auto infos = spindle::shard::WriteShardSnapshots(
        full, service_opts.analyzer,
        static_cast<uint32_t>(num_shards), write_shards_prefix);
    if (!infos.ok()) {
      std::fprintf(stderr, "write-shards failed: %s\n",
                   infos.status().ToString().c_str());
      return 1;
    }
    for (const auto& info : infos.ValueOrDie()) {
      std::printf("%s %lld\n", info.path.c_str(),
                  static_cast<long long>(info.num_docs));
    }
    if (!queries_file.empty()) {
      std::FILE* f = std::fopen(queries_file.c_str(), "w");
      if (f != nullptr) {
        for (const std::string& q : spindle::GenerateQueries(gen, 16, 2)) {
          std::fprintf(f, "%s\n", q.c_str());
        }
        std::fclose(f);
      }
    }
    return 0;
  }

  QueryService service(service_opts);

  // Warm restart: an existing snapshot replaces collection building
  // entirely — relations and indexes are mapped, not rebuilt, and the
  // first query runs without re-tokenizing a single document.
  bool restored = false;
  if (!snapshot_path.empty()) {
    std::FILE* probe = std::fopen(snapshot_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      spindle::SnapshotLoadInfo info;
      spindle::Status st = service.LoadSnapshot(snapshot_path, &info);
      if (!st.ok()) {
        std::fprintf(stderr, "snapshot load failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      restored = true;
      std::fprintf(
          stderr,
          "restored snapshot %s (%zu bytes, %zu relations, %zu indexes)\n",
          snapshot_path.c_str(), info.file_bytes, info.relations,
          info.indexes);
    }
  }

  if (generate_docs > 0) {
    spindle::TextCollectionOptions gen;
    gen.num_docs = generate_docs;
    gen.vocab_size = std::max<int64_t>(2000, generate_docs / 2);
    gen.avg_doc_len = 60;
    if (!restored) {
      auto docs = spindle::GenerateTextCollection(gen);
      if (!docs.ok()) {
        std::fprintf(stderr, "generate failed: %s\n",
                     docs.status().ToString().c_str());
        return 1;
      }
      if (shard_id >= 0) {
        // Shard mode: every shard generates the identical full
        // collection (the generator is deterministic), computes the
        // full-collection statistics, then keeps only its partition.
        spindle::RelationPtr full = docs.MoveValueOrDie();
        auto stats =
            spindle::shard::GlobalStats::Compute(full,
                                                 service_opts.analyzer);
        if (!stats.ok()) {
          std::fprintf(stderr, "global statistics failed: %s\n",
                       stats.status().ToString().c_str());
          return 1;
        }
        auto part = spindle::shard::PartitionCollection(
            full, static_cast<uint32_t>(shard_id),
            static_cast<uint32_t>(num_shards));
        if (!part.ok()) {
          std::fprintf(stderr, "partition failed: %s\n",
                       part.status().ToString().c_str());
          return 1;
        }
        const size_t partition_rows = part.ValueOrDie()->num_rows();
        service.RegisterCollection("docs", part.MoveValueOrDie());
        spindle::Status st =
            service.SetGlobalStats("docs", stats.MoveValueOrDie());
        if (!st.ok()) {
          std::fprintf(stderr, "install statistics failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "registered shard %lld/%lld of 'docs' (%zu of %lld "
                     "docs, global statistics installed)\n",
                     static_cast<long long>(shard_id),
                     static_cast<long long>(num_shards), partition_rows,
                     static_cast<long long>(generate_docs));
      } else {
        service.RegisterCollection("docs", docs.MoveValueOrDie());
        std::fprintf(stderr,
                     "registered synthetic collection 'docs' (%lld docs)\n",
                     static_cast<long long>(generate_docs));
      }
    }
    if (!queries_file.empty()) {
      // Vocabulary words are synthetic (base-26 scrambles, not "word7"),
      // so scripted clients need real query terms; dump a sample workload.
      // Queries derive from the generator options alone, so a restored
      // server writes the same workload a cold one would.
      std::FILE* f = std::fopen(queries_file.c_str(), "w");
      if (f != nullptr) {
        for (const std::string& q : spindle::GenerateQueries(gen, 16, 2)) {
          std::fprintf(f, "%s\n", q.c_str());
        }
        std::fclose(f);
      }
    }
  }

  // Cold oracle: fold a write log into the registered collections by
  // offline rebuild. The result is definitionally what "a cold build
  // over the final logical collection" means — the reference the live
  // delta/compaction path is byte-compared against.
  if (!apply_writes_file.empty()) {
    std::ifstream in(apply_writes_file);
    if (!in) {
      std::fprintf(stderr, "could not open --apply-writes file %s\n",
                   apply_writes_file.c_str());
      return 2;
    }
    std::map<std::string, std::vector<spindle::ingest::WriteOp>> per_coll;
    std::string line;
    size_t total_ops = 0;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.rfind("FLUSH", 0) == 0) continue;  // no-op offline
      auto parsed = spindle::ingest::ParseWriteCommand(line);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad write line '%s': %s\n", line.c_str(),
                     parsed.status().ToString().c_str());
        return 2;
      }
      per_coll[parsed.ValueOrDie().collection].push_back(
          std::move(parsed.ValueOrDie().op));
      ++total_ops;
    }
    for (auto& [name, ops] : per_coll) {
      auto docs = service.catalog().Get(name);
      if (!docs.ok()) {
        std::fprintf(stderr, "--apply-writes: %s\n",
                     docs.status().ToString().c_str());
        return 2;
      }
      auto merged =
          spindle::ingest::ApplyWritesCold(docs.ValueOrDie(), ops);
      if (!merged.ok()) {
        std::fprintf(stderr, "--apply-writes failed on '%s': %s\n",
                     name.c_str(), merged.status().ToString().c_str());
        return 2;
      }
      const size_t rows = merged.ValueOrDie()->num_rows();
      service.RegisterCollection(name, merged.MoveValueOrDie());
      std::fprintf(stderr,
                   "applied writes cold to '%s' (%zu ops total, %zu docs)\n",
                   name.c_str(), ops.size(), rows);
    }
    std::fprintf(stderr, "cold-applied %zu writes from %s\n", total_ops,
                 apply_writes_file.c_str());
  }

  if (!snapshot_path.empty() && !restored) {
    spindle::Status st = service.SaveSnapshot(snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved snapshot %s\n", snapshot_path.c_str());
  }

  LineServer server(&service, server_opts);
  spindle::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "LISTENING %s:%d\n", server_opts.host.c_str(),
               server.port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleSigusr1);
  while (g_signal_stop == 0 && !server.stopping()) {
    if (g_dump_slowlog != 0) {
      g_dump_slowlog = 0;
      std::fprintf(stderr, "--- slow-query log ---\n");
      for (const std::string& row : service.SlowLogRows()) {
        std::fprintf(stderr, "%s\n", row.c_str());
      }
      std::fprintf(stderr, "--- end slow-query log ---\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  if (!trace_file.empty()) {
    std::FILE* f = std::fopen(trace_file.c_str(), "w");
    if (f != nullptr) {
      std::string json = service.ExportChromeTraceJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote trace to %s\n", trace_file.c_str());
    } else {
      std::fprintf(stderr, "could not open trace file %s\n",
                   trace_file.c_str());
    }
  }
  std::fprintf(stderr, "shutdown complete\n%s\n",
               service.MetricsJson().c_str());
  return 0;
}
