/// \file slowlog.h
/// \brief Bounded slow-query log: captures requests over a latency
/// threshold (or a deterministic 1/N sample) with their query text,
/// outcome, latency breakdown and pruning counters — plus an exemplar
/// trace id when tracing was on, retrievable via `TRACEPULL`.
///
/// The off path costs one relaxed load (enabled check); the sampled path
/// adds one relaxed fetch_add. Recording a hit takes a short mutex on a
/// bounded ring, off the per-request critical path (after the response
/// has been produced).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace spindle {
namespace server {

struct SlowLogOptions {
  /// Capture any request slower than this (0 disables the threshold).
  int64_t threshold_ms = 0;
  /// Additionally capture every N-th request regardless of latency
  /// (0 disables sampling).
  uint64_t sample_every = 0;
  /// Ring capacity; the oldest entry is evicted on overflow.
  size_t capacity = 128;
};

struct SlowLogEntry {
  uint64_t seq = 0;          ///< 1-based, monotone across evictions
  uint64_t at_ns = 0;        ///< obs::NowNs() when the request finished
  std::string kind;          ///< "search", "searchg", "write", ...
  std::string text;          ///< query / command text
  std::string status;        ///< "ok", "deadline_exceeded", ...
  uint64_t latency_us = 0;
  uint64_t queue_wait_us = 0;
  uint64_t docs_scored = 0;
  uint64_t docs_skipped = 0;
  uint64_t blocks_decoded = 0;
  uint64_t trace_id = 0;     ///< exemplar trace (0 = tracing was off)
  bool sampled = false;      ///< captured by 1/N sampling, not threshold
  std::string detail;        ///< extra breakdown (coordinator shard info)

  /// \brief One JSON object (the SLOWLOG row format).
  std::string ToJson() const;
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowLogOptions options) : opts_(options) {}

  bool enabled() const {
    return opts_.threshold_ms > 0 || opts_.sample_every > 0;
  }

  /// \brief Whether a finished request with this latency should be
  /// recorded; `sampled_out` reports which rule fired.
  bool ShouldRecord(uint64_t latency_us, bool* sampled_out);

  /// \brief Appends an entry (assigns seq, evicts the oldest at cap).
  void Record(SlowLogEntry entry);

  std::vector<SlowLogEntry> Snapshot() const;
  /// \brief One JSON row per entry, oldest first (the SLOWLOG response).
  std::vector<std::string> RenderRows() const;

  const SlowLogOptions& options() const { return opts_; }

 private:
  const SlowLogOptions opts_;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> next_seq_{1};
  mutable std::mutex mu_;
  std::deque<SlowLogEntry> ring_;
};

}  // namespace server
}  // namespace spindle
