/// \file line_server.h
/// \brief A small line-protocol TCP front-end over QueryService, so the
/// same engine can be driven over a socket (spindle_serve binary).
///
/// Wire protocol (newline-terminated request lines; see docs/serving.md):
///
///   PING
///   SEARCH <collection> <k> <deadline_ms> <query terms...>
///   SPINQL <deadline_ms> <expression...>
///   TRACE <deadline_ms> <expression...>
///               executes the SpinQL expression with per-request tracing
///               forced on and returns the operator tree (one line per
///               span: wall time, rows, cache annotations) instead of
///               result rows
///   STATS
///   QUIT        close this connection
///   SHUTDOWN    stop the whole server (clean shutdown)
///
/// Responses are count-framed:
///
///   OK <n>\n        followed by exactly n data lines (tab-separated
///                   columns; float64 columns printed with %.17g so a
///                   client sees bit-identical doubles)
///   OK <n> trace=<id>\n   same, for a traced request (service-wide
///                   trace_requests or the TRACE command); <id> is the
///                   request's trace id in the Chrome export
///   ERR <Code> <message>\n   (message has newlines/tabs stripped)
///
/// Threading: one accept thread plus one thread per connection.
/// Concurrency and overload are governed by the QueryService's admission
/// controller, not by the socket layer.

#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/query_service.h"

namespace spindle {
namespace server {

struct LineServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
};

class LineServer {
 public:
  LineServer(QueryService* service, LineServerOptions options = {});
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// \brief Binds, listens and spawns the accept thread.
  Status Start();

  /// \brief The port actually bound (useful with options.port == 0).
  int port() const { return port_; }

  /// \brief Blocks until a SHUTDOWN command or RequestShutdown() arrives.
  void WaitForShutdown();

  /// \brief Asks the server to stop (called by the SHUTDOWN command; NOT
  /// async-signal-safe — from a signal handler, set your own atomic and
  /// poll stopping() from the main thread instead).
  void RequestShutdown();

  /// \brief True once shutdown has been requested.
  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// \brief Stops accepting, closes every connection and joins all
  /// threads. Idempotent. Must not be called from a connection thread —
  /// use SHUTDOWN/RequestShutdown there and Stop() from the owner.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one request line; returns the full response payload.
  std::string HandleLine(const std::string& line, bool* close_connection);

  QueryService* service_;
  LineServerOptions opts_;
  /// Atomic: Stop() invalidates it concurrently with the accept loop.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  std::vector<std::thread> conn_threads_;
  std::set<int> conn_fds_;
  bool started_ = false;
};

/// \brief Serializes a result relation into protocol data lines
/// (tab-separated; float64 via %.17g; tabs/newlines/backslashes in
/// strings escaped as \t, \n, \\). Shared with tests.
std::vector<std::string> SerializeRows(const Relation& rel);

}  // namespace server
}  // namespace spindle
