/// \file line_server.h
/// \brief A small line-protocol TCP front-end, so the same engine can be
/// driven over a socket (spindle_serve binary) — and, via the LineHandler
/// seam, so the shard coordinator (spindle_coord) speaks the identical
/// protocol: spindle_client works unchanged against either.
///
/// Wire protocol (newline-terminated request lines; see docs/serving.md):
///
///   PING
///   SEARCH <collection> <k> <deadline_ms> <query terms...>
///   SEARCHG <collection> <k> <deadline_ms> <model> <params...>
///               <global stats...>  — sharded search with shipped
///               full-collection statistics (coordinator-issued; see
///               src/shard/wire.h for the exact field layout)
///   GSTATS <collection>
///               the shard's stored full-collection statistics (header
///               row + one row per term; coordinator bootstrap)
///   SPINQL <deadline_ms> <expression...>
///   TRACE <deadline_ms> <expression...>
///               executes the SpinQL expression with per-request tracing
///               forced on and returns the operator tree (one line per
///               span: wall time, rows, cache annotations) instead of
///               result rows
///   STATS       metrics snapshot as one JSON row
///   METRICS     metrics in Prometheus text exposition format (one
///               protocol row per exposition line)
///   HEALTH      one-row readiness probe (served even when the admission
///               queue is full — probes never take an admission slot)
///   SLOWLOG     slow-query log, one JSON row per entry, oldest first
///   TRACEPULL <trace id (hex)>
///               span rows for a recently traced request (header row +
///               one row per span; see src/obs/span_wire.h) — how a
///               coordinator collects shard spans into one timeline
///   QUIT        close this connection
///   SHUTDOWN    stop the whole server (clean shutdown)
///
/// Any command (except the probe/pull commands above) may carry an
/// optional leading `tid=<hex trace id>:<parent span>` token before its
/// arguments: the request then records spans under the caller's
/// distributed trace and keeps them pullable via TRACEPULL. Requests
/// without the token are byte-identical to the pre-token protocol.
///
/// Responses are count-framed:
///
///   OK <n>\n        followed by exactly n data lines (tab-separated
///                   columns; float64 columns printed with %.17g so a
///                   client sees bit-identical doubles)
///   OK <n> trace=<id>\n   same, for a traced request (service-wide
///                   trace_requests or the TRACE command); <id> is the
///                   request's trace id in the Chrome export
///   OK <n> partial=1\n    same, for a degraded scatter-gather answer
///                   (coordinator only: one or more shards failed or
///                   missed the deadline and the merge covers the rest)
///   ERR <Code> <message>\n   (message has newlines/tabs stripped)
///
/// Header tokens after the count are optional, ordered (trace before
/// partial) and space-separated — clients that parse the count with
/// strtoll and stop at the first space keep working.
///
/// Threading: one accept thread plus one thread per connection.
/// Concurrency and overload are governed by the backing service's
/// admission controller, not by the socket layer.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/query_service.h"

namespace spindle {
namespace server {

struct LineServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
};

/// \brief The command surface behind a LineServer. PING, QUIT and
/// SHUTDOWN are protocol-level and handled by the server itself; every
/// other command line lands here. Implementations must be thread-safe —
/// the server calls Handle from one thread per connection.
class LineHandler {
 public:
  virtual ~LineHandler() = default;
  /// \brief Handles one request: `cmd` is the first word of the line,
  /// `rest` the remainder (leading spaces stripped). Returns the complete
  /// framed response (WireOkBlock / WireErrLine).
  virtual std::string Handle(const std::string& cmd, std::string rest) = 0;
};

/// \brief The QueryService command set (single-node serving and the
/// shard-side of sharded serving): SEARCH, SEARCHG, GSTATS, SPINQL,
/// TRACE, STATS.
class QueryServiceHandler : public LineHandler {
 public:
  explicit QueryServiceHandler(QueryService* service) : service_(service) {}
  std::string Handle(const std::string& cmd, std::string rest) override;

 private:
  QueryService* service_;
};

class LineServer {
 public:
  /// \brief Serves the standard QueryService command set (owns the
  /// handler). The common single-node and shard-backend constructor.
  LineServer(QueryService* service, LineServerOptions options = {});
  /// \brief Serves a custom command set (e.g. the shard coordinator's);
  /// `handler` must outlive the server.
  LineServer(LineHandler* handler, LineServerOptions options = {});
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// \brief Binds, listens and spawns the accept thread.
  Status Start();

  /// \brief The port actually bound (useful with options.port == 0).
  int port() const { return port_; }

  /// \brief Blocks until a SHUTDOWN command or RequestShutdown() arrives.
  void WaitForShutdown();

  /// \brief Asks the server to stop (called by the SHUTDOWN command; NOT
  /// async-signal-safe — from a signal handler, set your own atomic and
  /// poll stopping() from the main thread instead).
  void RequestShutdown();

  /// \brief True once shutdown has been requested.
  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// \brief Stops accepting, closes every connection and joins all
  /// threads. Idempotent. Must not be called from a connection thread —
  /// use SHUTDOWN/RequestShutdown there and Stop() from the owner.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one request line; returns the full response payload.
  std::string HandleLine(const std::string& line, bool* close_connection);

  std::unique_ptr<QueryServiceHandler> owned_handler_;
  LineHandler* handler_;
  LineServerOptions opts_;
  /// Atomic: Stop() invalidates it concurrently with the accept loop.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  std::vector<std::thread> conn_threads_;
  std::set<int> conn_fds_;
  bool started_ = false;
};

/// \brief Serializes a result relation into protocol data lines
/// (tab-separated; float64 via %.17g; tabs/newlines/backslashes in
/// strings escaped as \t, \n, \\). Shared with tests.
std::vector<std::string> SerializeRows(const Relation& rel);

/// Wire framing helpers, shared by every LineHandler implementation.
/// OK header: "OK <n>[ trace=<id>][ partial=1]".
std::string WireOkBlock(const std::vector<std::string>& rows,
                        uint64_t trace_id = 0, bool partial = false);
std::string WireErrLine(const Status& st);
/// Splits off the first space-delimited word of `*rest` in place.
std::string WireTakeWord(std::string* rest);
bool WireParseInt64(const std::string& s, int64_t* out);
/// Splits rendered multi-line text (operator tree, Prometheus
/// exposition) into protocol rows.
std::vector<std::string> WireSplitLines(const std::string& text);

}  // namespace server
}  // namespace spindle
