#include "server/metrics.h"

namespace spindle {
namespace server {

std::string ServiceMetrics::SnapshotJson() const {
  auto v = [](const std::atomic<uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  std::string out = "{";
  out += "\"requests\":{";
  out += "\"total\":" + v(requests_total);
  out += ",\"ok\":" + v(requests_ok);
  out += ",\"deadline_exceeded\":" + v(requests_deadline_exceeded);
  out += ",\"cancelled\":" + v(requests_cancelled);
  out += ",\"overloaded\":" + v(requests_overloaded);
  out += ",\"error\":" + v(requests_error);
  out += "},\"work\":{";
  out += "\"docs_scored\":" + v(docs_scored);
  out += ",\"docs_skipped\":" + v(docs_skipped);
  out += ",\"blocks_skipped\":" + v(blocks_skipped);
  out += ",\"blocks_decoded\":" + v(blocks_decoded);
  out += ",\"decode_bytes\":" + v(decode_bytes);
  out += ",\"index_hits\":" + v(index_hits);
  out += ",\"index_misses\":" + v(index_misses);
  out += ",\"cache_hits\":" + v(cache_hits);
  out += ",\"cache_misses\":" + v(cache_misses);
  out += "},\"ingest\":{";
  out += "\"writes_total\":" + v(writes_total);
  out += ",\"writes_rejected\":" + v(writes_rejected);
  out += ",\"delta_docs\":" + v(delta_docs);
  out += ",\"deleted_docs\":" + v(deleted_docs);
  out += ",\"compactions\":" + v(compactions);
  out += ",\"freshness_lag_us\":" + freshness_lag_us.ToJson();
  out += "},\"latency_us\":" + latency_us.ToJson();
  out += ",\"queue_wait_us\":" + queue_wait_us.ToJson();
  out += "}";
  return out;
}

void ServiceMetrics::Register(obs::MetricsRegistry* registry) const {
  auto* r = registry;
  const std::string none;
  r->AddCounter("spindle_requests_total", "Requests by outcome.",
                R"(outcome="ok")", &requests_ok);
  r->AddCounter("spindle_requests_total", "", R"(outcome="deadline_exceeded")",
                &requests_deadline_exceeded);
  r->AddCounter("spindle_requests_total", "", R"(outcome="cancelled")",
                &requests_cancelled);
  r->AddCounter("spindle_requests_total", "", R"(outcome="overloaded")",
                &requests_overloaded);
  r->AddCounter("spindle_requests_total", "", R"(outcome="error")",
                &requests_error);
  r->AddCounter("spindle_requests_by_priority_total",
                "Requests by admission priority.", R"(priority="interactive")",
                &requests_by_priority[0]);
  r->AddCounter("spindle_requests_by_priority_total", "",
                R"(priority="batch")", &requests_by_priority[1]);
  static const char* kModelNames[4] = {"bm25", "tfidf", "lm_dirichlet",
                                       "lm_jelinek_mercer"};
  for (int m = 0; m < 4; ++m) {
    r->AddCounter("spindle_searches_total", m == 0 ? "Searches by model." : "",
                  "model=\"" + std::string(kModelNames[m]) + "\"",
                  &searches_by_model[m]);
  }
  r->AddCounter("spindle_docs_scored_total", "Documents scored.", none,
                &docs_scored);
  r->AddCounter("spindle_docs_skipped_total",
                "Documents skipped by pruning.", none, &docs_skipped);
  r->AddCounter("spindle_blocks_skipped_total",
                "Posting blocks skipped by impact bounds.", none,
                &blocks_skipped);
  r->AddCounter("spindle_blocks_decoded_total",
                "Compressed posting blocks decoded.", none, &blocks_decoded);
  r->AddCounter("spindle_decode_bytes_total",
                "Compressed bytes decoded.", none, &decode_bytes);
  r->AddCounter("spindle_index_hits_total",
                "On-demand index lookups served from an existing index.",
                none, &index_hits);
  r->AddCounter("spindle_index_misses_total",
                "On-demand index lookups that triggered a build.", none,
                &index_misses);
  r->AddCounter("spindle_writes_total", "Accepted write commands.", none,
                &writes_total);
  r->AddCounter("spindle_writes_rejected_total", "Rejected write commands.",
                none, &writes_rejected);
  r->AddCounter("spindle_compactions_total", "Delta compactions installed.",
                none, &compactions);
  r->AddGauge("spindle_delta_docs", "Docs buffered in live deltas.", none,
              &delta_docs);
  r->AddGauge("spindle_deleted_docs", "Docs masked as deleted in deltas.",
              none, &deleted_docs);
  r->AddHistogram("spindle_request_latency_us",
                  "End-to-end request latency (microseconds).", none,
                  &latency_us);
  r->AddHistogram("spindle_queue_wait_us",
                  "Admission queue wait (microseconds).", none,
                  &queue_wait_us);
  r->AddHistogram("spindle_freshness_lag_us",
                  "Write arrival to searchable (microseconds).", none,
                  &freshness_lag_us);
}

}  // namespace server
}  // namespace spindle
