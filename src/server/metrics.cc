#include "server/metrics.h"

#include <bit>

namespace spindle {
namespace server {

int LatencyHistogram::BucketOf(uint64_t us) {
  if (us < (1u << kSubBits)) return static_cast<int>(us);  // exact tiny values
  int octave = std::bit_width(us) - 1;                     // >= kSubBits
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    us = (uint64_t{1} << kOctaves) - 1;
  }
  // Top kSubBits bits below the leading bit select the linear sub-bucket.
  uint64_t sub = (us >> (octave - kSubBits)) & ((1u << kSubBits) - 1);
  return (octave << kSubBits) + static_cast<int>(sub);
}

uint64_t LatencyHistogram::BucketUpperUs(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
  int octave = bucket >> kSubBits;
  uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBits) - 1));
  uint64_t base = uint64_t{1} << octave;
  uint64_t step = base >> kSubBits;
  return base + (sub + 1) * step - 1;
}

uint64_t LatencyHistogram::PercentileUs(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  // Nearest-rank: the ceil(q/100 * total)-th smallest sample (1-based).
  uint64_t rank = static_cast<uint64_t>(q / 100.0 * total);
  if (rank * 100 < static_cast<uint64_t>(q * total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperUs(b);
  }
  return max_us();
}

std::string LatencyHistogram::ToJson() const {
  uint64_t n = count();
  double mean = n == 0 ? 0.0 : static_cast<double>(sum_us()) /
                                   static_cast<double>(n);
  std::string out = "{";
  out += "\"count\":" + std::to_string(n);
  out += ",\"mean_us\":" + std::to_string(mean);
  out += ",\"max_us\":" + std::to_string(max_us());
  out += ",\"p50_us\":" + std::to_string(PercentileUs(50));
  out += ",\"p95_us\":" + std::to_string(PercentileUs(95));
  out += ",\"p99_us\":" + std::to_string(PercentileUs(99));
  out += "}";
  return out;
}

std::string ServiceMetrics::SnapshotJson() const {
  auto v = [](const std::atomic<uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  std::string out = "{";
  out += "\"requests\":{";
  out += "\"total\":" + v(requests_total);
  out += ",\"ok\":" + v(requests_ok);
  out += ",\"deadline_exceeded\":" + v(requests_deadline_exceeded);
  out += ",\"cancelled\":" + v(requests_cancelled);
  out += ",\"overloaded\":" + v(requests_overloaded);
  out += ",\"error\":" + v(requests_error);
  out += "},\"work\":{";
  out += "\"docs_scored\":" + v(docs_scored);
  out += ",\"docs_skipped\":" + v(docs_skipped);
  out += ",\"blocks_skipped\":" + v(blocks_skipped);
  out += ",\"blocks_decoded\":" + v(blocks_decoded);
  out += ",\"decode_bytes\":" + v(decode_bytes);
  out += ",\"index_hits\":" + v(index_hits);
  out += ",\"index_misses\":" + v(index_misses);
  out += ",\"cache_hits\":" + v(cache_hits);
  out += ",\"cache_misses\":" + v(cache_misses);
  out += "},\"ingest\":{";
  out += "\"writes_total\":" + v(writes_total);
  out += ",\"writes_rejected\":" + v(writes_rejected);
  out += ",\"delta_docs\":" + v(delta_docs);
  out += ",\"deleted_docs\":" + v(deleted_docs);
  out += ",\"compactions\":" + v(compactions);
  out += ",\"freshness_lag_us\":" + freshness_lag_us.ToJson();
  out += "},\"latency_us\":" + latency_us.ToJson();
  out += ",\"queue_wait_us\":" + queue_wait_us.ToJson();
  out += "}";
  return out;
}

}  // namespace server
}  // namespace spindle
