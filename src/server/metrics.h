/// \file metrics.h
/// \brief Service-wide observability: lock-free counters and latency
/// histograms with percentile snapshots, exportable as JSON.
///
/// Recording is wait-free (one atomic add per sample), so the serving hot
/// path never contends on a metrics lock. Snapshots read the buckets
/// relaxed: the exported values are a consistent-enough monotone lag of
/// the true totals, which is the standard contract for scrape-style
/// metrics endpoints.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace spindle {
namespace server {

/// \brief Log-bucketed histogram of microsecond values.
///
/// Buckets are exponential with 4 linear sub-buckets per octave
/// (resolution ~12% everywhere), covering 1 µs .. ~1.2 hours; larger
/// samples clamp into the top bucket. Percentile estimates return the
/// upper bound of the bucket containing the nearest-rank sample, so a
/// reported p99 is always >= the true p99 (conservative for SLOs).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;                   // 4 sub-buckets
  static constexpr int kOctaves = 32;                  // up to 2^32 µs
  static constexpr int kBuckets = kOctaves << kSubBits;

  /// \brief Records one sample (microseconds). Wait-free.
  void Record(uint64_t us) {
    counts_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev && !max_us_.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }

  /// \brief Nearest-rank percentile (q in [0, 100]) in microseconds: the
  /// upper bound of the bucket holding the rank-th sample; 0 when empty.
  uint64_t PercentileUs(double q) const;

  /// \brief {"count":n,"mean_us":x,"max_us":n,"p50_us":n,...}
  std::string ToJson() const;

  /// \brief Bucket index of a microsecond value.
  static int BucketOf(uint64_t us);
  /// \brief Inclusive upper bound of a bucket's value range.
  static uint64_t BucketUpperUs(int bucket);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// \brief The query service's counters and histograms. One instance per
/// QueryService; everything is atomic so concurrent requests record
/// without coordination.
struct ServiceMetrics {
  // Request outcomes.
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_deadline_exceeded{0};
  std::atomic<uint64_t> requests_cancelled{0};
  std::atomic<uint64_t> requests_overloaded{0};
  std::atomic<uint64_t> requests_error{0};

  // Work done on behalf of requests (rolled up from per-call stats).
  std::atomic<uint64_t> docs_scored{0};
  std::atomic<uint64_t> docs_skipped{0};
  std::atomic<uint64_t> blocks_skipped{0};
  std::atomic<uint64_t> blocks_decoded{0};
  std::atomic<uint64_t> decode_bytes{0};
  std::atomic<uint64_t> index_hits{0};
  std::atomic<uint64_t> index_misses{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  // Live ingestion. The doc counts are gauges (set to the current delta
  // size after each write), the rest are monotone counters.
  std::atomic<uint64_t> writes_total{0};
  std::atomic<uint64_t> writes_rejected{0};
  std::atomic<uint64_t> delta_docs{0};
  std::atomic<uint64_t> deleted_docs{0};
  std::atomic<uint64_t> compactions{0};

  /// End-to-end request latency (admission + execution), microseconds.
  LatencyHistogram latency_us;
  /// Time spent queued in the admission controller, microseconds.
  LatencyHistogram queue_wait_us;
  /// Freshness lag: write arrival to the write being searchable (the new
  /// catalog version installed), microseconds.
  LatencyHistogram freshness_lag_us;

  /// \brief One JSON object with every counter and both histograms
  /// (schema documented in docs/serving.md).
  std::string SnapshotJson() const;
};

}  // namespace server
}  // namespace spindle
