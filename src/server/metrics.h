/// \file metrics.h
/// \brief Service-wide observability: lock-free counters and latency
/// histograms with percentile snapshots, exportable as JSON and
/// self-registering into the unified obs::MetricsRegistry for the
/// Prometheus METRICS endpoint.
///
/// Recording is wait-free (one atomic add per sample), so the serving hot
/// path never contends on a metrics lock. Snapshots read the buckets
/// relaxed: the exported values are a consistent-enough monotone lag of
/// the true totals, which is the standard contract for scrape-style
/// metrics endpoints.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"

namespace spindle {
namespace server {

/// The log-bucketed histogram lives in obs so the registry (and the
/// coordinator's exact fleet merge) can share its bucket layout; the
/// server keeps its historical name.
using LatencyHistogram = obs::LatencyHistogram;

/// \brief The query service's counters and histograms. One instance per
/// QueryService; everything is atomic so concurrent requests record
/// without coordination.
struct ServiceMetrics {
  // Request outcomes.
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_deadline_exceeded{0};
  std::atomic<uint64_t> requests_cancelled{0};
  std::atomic<uint64_t> requests_overloaded{0};
  std::atomic<uint64_t> requests_error{0};

  // Requests by admission priority (0 = interactive, 1 = batch).
  std::atomic<uint64_t> requests_by_priority[2] = {};
  // Searches by ranking model, indexed by ir::RankModel's enum order.
  std::atomic<uint64_t> searches_by_model[4] = {};

  // Work done on behalf of requests (rolled up from per-call stats).
  std::atomic<uint64_t> docs_scored{0};
  std::atomic<uint64_t> docs_skipped{0};
  std::atomic<uint64_t> blocks_skipped{0};
  std::atomic<uint64_t> blocks_decoded{0};
  std::atomic<uint64_t> decode_bytes{0};
  std::atomic<uint64_t> index_hits{0};
  std::atomic<uint64_t> index_misses{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  // Live ingestion. The doc counts are gauges (set to the current delta
  // size after each write), the rest are monotone counters.
  std::atomic<uint64_t> writes_total{0};
  std::atomic<uint64_t> writes_rejected{0};
  std::atomic<uint64_t> delta_docs{0};
  std::atomic<uint64_t> deleted_docs{0};
  std::atomic<uint64_t> compactions{0};

  /// End-to-end request latency (admission + execution), microseconds.
  LatencyHistogram latency_us;
  /// Time spent queued in the admission controller, microseconds.
  LatencyHistogram queue_wait_us;
  /// Freshness lag: write arrival to the write being searchable (the new
  /// catalog version installed), microseconds.
  LatencyHistogram freshness_lag_us;

  /// \brief One JSON object with every counter and both histograms
  /// (schema documented in docs/serving.md).
  std::string SnapshotJson() const;

  /// \brief Self-registers every cell under the `spindle_*` family names
  /// (docs/observability.md documents the naming scheme). The registry
  /// must not outlive this struct.
  void Register(obs::MetricsRegistry* registry) const;
};

}  // namespace server
}  // namespace spindle
