#include "strategy/block.h"

namespace spindle {
namespace strategy {

namespace {

using spinql::Node;
using spinql::NodePtr;
using spinql::Program;

/// SELECT [$2 = property AND $3 = value] (triples)
NodePtr SelectPattern(const std::string& triples, const std::string& property,
                      const std::string& value = "") {
  ExprPtr pred = Expr::Eq(Expr::Column(1), Expr::LitString(property));
  if (!value.empty()) {
    pred = Expr::And(std::move(pred),
                     Expr::Eq(Expr::Column(2), Expr::LitString(value)));
  }
  return Node::Select(std::move(pred), Node::RelRef(triples));
}

class SourceBlock : public Block {
 public:
  explicit SourceBlock(std::string table) : table_(std::move(table)) {}
  std::string type_name() const override { return "Source " + table_; }
  size_t num_inputs() const override { return 0; }
  Result<std::string> Emit(Program*, const std::vector<std::string>&,
                           NameGen*) const override {
    return table_;
  }

 private:
  std::string table_;
};

class SelectByTypeBlock : public Block {
 public:
  SelectByTypeBlock(std::string type, std::string type_property,
                    std::string triples)
      : type_(std::move(type)), type_property_(std::move(type_property)),
        triples_(std::move(triples)) {}
  std::string type_name() const override {
    return "Select type " + type_;
  }
  size_t num_inputs() const override { return 0; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>&,
                           NameGen* names) const override {
    NodePtr node = Node::Project(
        Assumption::kMax, {Expr::Column(0)}, {"id"},
        SelectPattern(triples_, type_property_, type_));
    std::string name = names->Fresh("nodes");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  std::string type_;
  std::string type_property_;
  std::string triples_;
};

class FilterByPropertyBlock : public Block {
 public:
  FilterByPropertyBlock(std::string property, std::string value,
                        std::string triples)
      : property_(std::move(property)), value_(std::move(value)),
        triples_(std::move(triples)) {}
  std::string type_name() const override {
    return "Filter " + property_ + "=" + value_;
  }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    // join attrs: id, subject, property, object -> keep id.
    NodePtr node = Node::Project(
        Assumption::kMax, {Expr::Column(0)}, {"id"},
        Node::Join({JoinKey{0, 0}}, Node::RelRef(inputs[0]),
                   SelectPattern(triples_, property_, value_)));
    std::string name = names->Fresh("filtered");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  std::string property_;
  std::string value_;
  std::string triples_;
};

class ExtractPropertyBlock : public Block {
 public:
  ExtractPropertyBlock(std::string property, std::string triples)
      : property_(std::move(property)), triples_(std::move(triples)) {}
  std::string type_name() const override { return "Extract " + property_; }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    // join attrs: id, subject, property, object -> (id, value).
    NodePtr node = Node::Project(
        Assumption::kAll, {Expr::Column(0), Expr::Column(3)},
        {"id", "value"},
        Node::Join({JoinKey{0, 0}}, Node::RelRef(inputs[0]),
                   SelectPattern(triples_, property_)));
    std::string name = names->Fresh("docs");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  std::string property_;
  std::string triples_;
};

class TraverseBlock : public Block {
 public:
  TraverseBlock(std::string property, Direction direction,
                Assumption assumption, std::string triples)
      : property_(std::move(property)), direction_(direction),
        assumption_(assumption), triples_(std::move(triples)) {}
  std::string type_name() const override {
    return std::string("Traverse ") + property_ +
           (direction_ == Direction::kForward ? "" : " (backward)");
  }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    // Forward joins node id on subject and keeps the object; backward
    // joins on object and keeps the subject.
    size_t join_col = direction_ == Direction::kForward ? 0 : 2;
    size_t out_col = direction_ == Direction::kForward ? 3 : 1;
    NodePtr node = Node::Project(
        assumption_, {Expr::Column(out_col)}, {"id"},
        Node::Join({JoinKey{0, join_col}}, Node::RelRef(inputs[0]),
                   SelectPattern(triples_, property_)));
    std::string name = names->Fresh("nodes");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  std::string property_;
  Direction direction_;
  Assumption assumption_;
  std::string triples_;
};

class RankByTextBlock : public Block {
 public:
  explicit RankByTextBlock(spinql::RankSpec spec) : spec_(std::move(spec)) {}
  std::string type_name() const override {
    return std::string("Rank by Text ") + RankModelName(spec_.model);
  }
  size_t num_inputs() const override { return 2; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    NodePtr node = Node::Rank(spec_, Node::RelRef(inputs[0]),
                              Node::RelRef(inputs[1]));
    std::string name = names->Fresh("ranked");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  spinql::RankSpec spec_;
};

class QueryBlock : public Block {
 public:
  explicit QueryBlock(std::string table) : table_(std::move(table)) {}
  std::string type_name() const override { return "Query"; }
  size_t num_inputs() const override { return 0; }
  Result<std::string> Emit(Program*, const std::vector<std::string>&,
                           NameGen*) const override {
    return table_;
  }

 private:
  std::string table_;
};

class ExpandSynonymsBlock : public Block {
 public:
  ExpandSynonymsBlock(double weight, std::string synonym_property,
                      std::string triples, AnalyzerOptions tokenizer)
      : weight_(weight), synonym_property_(std::move(synonym_property)),
        triples_(std::move(triples)), tokenizer_(std::move(tokenizer)) {}
  std::string type_name() const override { return "Expand synonyms"; }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    // Tokenize the query text; the tokens join against synonym triples;
    // the synonym objects become additional weighted query rows.
    // query (text, p) --TOKENIZE--> (term, pos, p) --PROJECT--> (term, p)
    NodePtr qtok = Node::Project(
        Assumption::kMax, {Expr::Column(0)}, {"term"},
        Node::Tokenize(0, tokenizer_, Node::RelRef(inputs[0])));
    std::string qtok_name = names->Fresh("qtok");
    SPINDLE_RETURN_IF_ERROR(program->Append(qtok_name, qtok));
    // join attrs: term, subject, property, object -> synonym text.
    NodePtr syn = Node::Project(
        Assumption::kMax, {Expr::Column(3)}, {"text"},
        Node::Join({JoinKey{0, 0}}, Node::RelRef(qtok_name),
                   SelectPattern(triples_, synonym_property_)));
    std::string syn_name = names->Fresh("syn");
    SPINDLE_RETURN_IF_ERROR(program->Append(syn_name, syn));
    NodePtr expanded = Node::Unite(
        Assumption::kAll,
        {Node::RelRef(inputs[0]),
         Node::Weight(weight_, Node::RelRef(syn_name))});
    std::string name = names->Fresh("qexp");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(expanded)));
    return name;
  }

 private:
  double weight_;
  std::string synonym_property_;
  std::string triples_;
  AnalyzerOptions tokenizer_;
};

class ExpandCompoundsBlock : public Block {
 public:
  ExpandCompoundsBlock(double weight, AnalyzerOptions tokenizer)
      : weight_(weight), tokenizer_(std::move(tokenizer)) {}
  std::string type_name() const override { return "Expand compounds"; }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    // query (text, p) --TOKENIZE--> (term, pos, p); adjacent pairs join
    // on pos+1 = pos and concatenate into compound candidates.
    NodePtr qtok = Node::Tokenize(0, tokenizer_, Node::RelRef(inputs[0]));
    std::string qtok_name = names->Fresh("ctok");
    SPINDLE_RETURN_IF_ERROR(program->Append(qtok_name, qtok));
    NodePtr shifted = Node::Project(
        Assumption::kAll,
        {Expr::Column(0),
         Expr::Add(Expr::Column(1), Expr::LitInt(1))},
        {"term", "nxt"}, Node::RelRef(qtok_name));
    std::string shifted_name = names->Fresh("cshift");
    SPINDLE_RETURN_IF_ERROR(program->Append(shifted_name,
                                            std::move(shifted)));
    // join attrs: term, nxt, term2, pos -> concat(term, term2).
    NodePtr compounds = Node::Project(
        Assumption::kMax,
        {Expr::Call("concat", {Expr::Column(0), Expr::Column(2)})},
        {"text"},
        Node::Join({JoinKey{1, 1}}, Node::RelRef(shifted_name),
                   Node::RelRef(qtok_name)));
    std::string compounds_name = names->Fresh("ccomp");
    SPINDLE_RETURN_IF_ERROR(program->Append(compounds_name,
                                            std::move(compounds)));
    NodePtr expanded = Node::Unite(
        Assumption::kAll,
        {Node::RelRef(inputs[0]),
         Node::Weight(weight_, Node::RelRef(compounds_name))});
    std::string name = names->Fresh("qcomp");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(expanded)));
    return name;
  }

 private:
  double weight_;
  AnalyzerOptions tokenizer_;
};

class MixBlock : public Block {
 public:
  explicit MixBlock(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  std::string type_name() const override { return "Mix (linear)"; }
  size_t num_inputs() const override { return weights_.size(); }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    std::vector<NodePtr> weighted;
    weighted.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      weighted.push_back(
          Node::Weight(weights_[i], Node::RelRef(inputs[i])));
    }
    NodePtr node = Node::Unite(Assumption::kDisjoint, std::move(weighted));
    std::string name = names->Fresh("mixed");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  std::vector<double> weights_;
};

class TopKBlock : public Block {
 public:
  explicit TopKBlock(size_t k) : k_(k) {}
  std::string type_name() const override {
    return "Top " + std::to_string(k_);
  }
  size_t num_inputs() const override { return 1; }
  Result<std::string> Emit(Program* program,
                           const std::vector<std::string>& inputs,
                           NameGen* names) const override {
    NodePtr node = Node::TopK(k_, Node::RelRef(inputs[0]));
    std::string name = names->Fresh("top");
    SPINDLE_RETURN_IF_ERROR(program->Append(name, std::move(node)));
    return name;
  }

 private:
  size_t k_;
};

}  // namespace

BlockPtr MakeSourceBlock(std::string table) {
  return std::make_unique<SourceBlock>(std::move(table));
}
BlockPtr MakeSelectByTypeBlock(std::string type, std::string type_property,
                               std::string triples) {
  return std::make_unique<SelectByTypeBlock>(
      std::move(type), std::move(type_property), std::move(triples));
}
BlockPtr MakeFilterByPropertyBlock(std::string property, std::string value,
                                   std::string triples) {
  return std::make_unique<FilterByPropertyBlock>(
      std::move(property), std::move(value), std::move(triples));
}
BlockPtr MakeExtractPropertyBlock(std::string property, std::string triples) {
  return std::make_unique<ExtractPropertyBlock>(std::move(property),
                                                std::move(triples));
}
BlockPtr MakeTraverseBlock(std::string property, Direction direction,
                           Assumption assumption, std::string triples) {
  return std::make_unique<TraverseBlock>(std::move(property), direction,
                                         assumption, std::move(triples));
}
BlockPtr MakeRankByTextBlock(spinql::RankSpec spec) {
  return std::make_unique<RankByTextBlock>(std::move(spec));
}
BlockPtr MakeQueryBlock(std::string query_table) {
  return std::make_unique<QueryBlock>(std::move(query_table));
}
BlockPtr MakeExpandSynonymsBlock(double weight, std::string synonym_property,
                                 std::string triples,
                                 AnalyzerOptions tokenizer) {
  return std::make_unique<ExpandSynonymsBlock>(
      weight, std::move(synonym_property), std::move(triples),
      std::move(tokenizer));
}
BlockPtr MakeExpandCompoundsBlock(double weight,
                                  AnalyzerOptions tokenizer) {
  return std::make_unique<ExpandCompoundsBlock>(weight,
                                                std::move(tokenizer));
}
BlockPtr MakeMixBlock(std::vector<double> weights) {
  return std::make_unique<MixBlock>(std::move(weights));
}
BlockPtr MakeTopKBlock(size_t k) { return std::make_unique<TopKBlock>(k); }

}  // namespace strategy
}  // namespace spindle
