#include "strategy/strategy.h"

#include "spinql/optimizer.h"

namespace spindle {
namespace strategy {

Result<int> Strategy::Add(BlockPtr block, std::vector<int> inputs) {
  if (inputs.size() != block->num_inputs()) {
    return Status::InvalidArgument(
        block->type_name() + " expects " +
        std::to_string(block->num_inputs()) + " inputs, got " +
        std::to_string(inputs.size()));
  }
  for (int in : inputs) {
    if (in < 0 || in >= static_cast<int>(nodes_.size())) {
      return Status::OutOfRange("unknown input block id " +
                                std::to_string(in));
    }
  }
  nodes_.push_back(GraphNode{std::move(block), std::move(inputs)});
  return static_cast<int>(nodes_.size()) - 1;
}

std::string Strategy::Describe() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "#";
    out += std::to_string(i);
    out += ' ';
    out += nodes_[i].block->type_name();
    if (!nodes_[i].inputs.empty()) {
      out += " <-";
      for (int in : nodes_[i].inputs) {
        out += " #";
        out += std::to_string(in);
      }
    }
    out += "\n";
  }
  return out;
}

Result<spinql::Program> Strategy::Compile() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("empty strategy");
  }
  spinql::Program program;
  NameGen names;
  std::vector<std::string> bindings(nodes_.size());
  // Blocks were added respecting topological order (inputs must already
  // exist), so a single forward pass suffices.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<std::string> input_names;
    input_names.reserve(nodes_[i].inputs.size());
    for (int in : nodes_[i].inputs) input_names.push_back(bindings[in]);
    SPINDLE_ASSIGN_OR_RETURN(
        bindings[i], nodes_[i].block->Emit(&program, input_names, &names));
  }
  // Ensure the program's final statement is the last block's output; 0-ary
  // blocks (Source/Query) may not have appended anything.
  const std::string& final_binding = bindings.back();
  if (program.statements().empty() ||
      program.output() != final_binding) {
    SPINDLE_RETURN_IF_ERROR(program.Append(
        "out", spinql::Node::RelRef(final_binding)));
  }
  return program;
}

Result<ProbRelation> StrategyExecutor::Run(const Strategy& strategy,
                                           const std::string& query_text) {
  SPINDLE_ASSIGN_OR_RETURN(spinql::Program program, strategy.Compile());
  return RunProgram(program, query_text);
}

Result<ProbRelation> StrategyExecutor::RunProgram(
    const spinql::Program& program, const std::string& query_text) {
  RelationBuilder builder(
      {{"data", DataType::kString}, {"p", DataType::kFloat64}});
  SPINDLE_RETURN_IF_ERROR(builder.AddRow({query_text, 1.0}));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr query_rel, builder.Build());
  catalog_->Register(kQueryTable, std::move(query_rel));
  if (!optimize_) return evaluator_.Eval(program);
  SPINDLE_ASSIGN_OR_RETURN(spinql::Program optimized,
                           spinql::OptimizeProgram(program, nullptr));
  return evaluator_.Eval(optimized);
}

}  // namespace strategy
}  // namespace spindle
