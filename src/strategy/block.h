/// \file block.h
/// \brief Strategy building blocks (paper §2.4).
///
/// "A so-called search strategy is modeled out of building blocks ...
/// The SpinQL queries contained in each block are combined automatically
/// under the hood." Each Block emits its SpinQL fragment (as AST
/// statements) into the program being compiled; the strategy graph wires
/// block outputs to block inputs by binding name.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pra/prob_relation.h"
#include "spinql/ast.h"
#include "text/analyzer.h"
#include "triples/graph.h"

namespace spindle {
namespace strategy {

/// \brief Generates fresh, deterministic binding names (b1, b2, ...).
class NameGen {
 public:
  std::string Fresh(const std::string& hint) {
    return hint + "_" + std::to_string(++counter_);
  }

 private:
  int counter_ = 0;
};

/// \brief A reusable strategy building block.
class Block {
 public:
  virtual ~Block() = default;

  /// \brief Display/type name ("Rank by Text BM25", ...).
  virtual std::string type_name() const = 0;

  /// \brief Number of upstream inputs this block consumes.
  virtual size_t num_inputs() const = 0;

  /// \brief Emits this block's SpinQL into `program`. `inputs` are the
  /// binding (or table) names of upstream outputs. Returns the binding
  /// name holding this block's output.
  virtual Result<std::string> Emit(spinql::Program* program,
                                   const std::vector<std::string>& inputs,
                                   NameGen* names) const = 0;
};

using BlockPtr = std::unique_ptr<Block>;

/// \name Block factories.
/// All triple-reading blocks default to the "triples" catalog table.
/// Node-set blocks consume/produce (id, p); collections are (id, value, p).
/// @{

/// \brief 0 inputs; outputs the named catalog table as-is.
BlockPtr MakeSourceBlock(std::string table);

/// \brief 0 inputs; nodes of `type` via (id, type_property, type) triples.
BlockPtr MakeSelectByTypeBlock(std::string type,
                               std::string type_property = "type",
                               std::string triples = "triples");

/// \brief 1 input (nodes); keeps nodes whose `property` equals `value`.
BlockPtr MakeFilterByPropertyBlock(std::string property, std::string value,
                                   std::string triples = "triples");

/// \brief 1 input (nodes); outputs (id, value, p) pairs of `property`.
BlockPtr MakeExtractPropertyBlock(std::string property,
                                  std::string triples = "triples");

/// \brief 1 input (nodes); follows `property` edges.
BlockPtr MakeTraverseBlock(std::string property, Direction direction,
                           Assumption assumption = Assumption::kMax,
                           std::string triples = "triples");

/// \brief 2 inputs (collection (id, text, p); query (text, p));
/// outputs ranked (id, p). The paper's "Rank by Text BM25" block.
BlockPtr MakeRankByTextBlock(spinql::RankSpec spec = {});

/// \brief 0 inputs; outputs the query table (default "query", registered
/// per request by the executor).
BlockPtr MakeQueryBlock(std::string query_table = "query");

/// \brief 1 input (query (text, p)); appends synonym expansions of the
/// query tokens with the given weight, via (term, synonym_property, term')
/// triples.
BlockPtr MakeExpandSynonymsBlock(double weight,
                                 std::string synonym_property = "synonym",
                                 std::string triples = "triples",
                                 AnalyzerOptions tokenizer = [] {
                                   AnalyzerOptions o;
                                   o.stemmer = "none";
                                   return o;
                                 }());

/// \brief 1 input (query (text, p)); appends compound-term expansions:
/// each adjacent pair of query tokens also contributes its concatenation
/// ("key board" additionally queries "keyboard") with the given weight —
/// the paper's "query expansion with ... compound terms" (§3).
BlockPtr MakeExpandCompoundsBlock(double weight,
                                  AnalyzerOptions tokenizer = [] {
                                    AnalyzerOptions o;
                                    o.stemmer = "none";
                                    return o;
                                  }());

/// \brief N inputs (ranked (id, p) lists); linear combination with the
/// given weights (WEIGHT + UNITE DISJOINT).
BlockPtr MakeMixBlock(std::vector<double> weights);

/// \brief 1 input; keeps the k most probable tuples.
BlockPtr MakeTopKBlock(size_t k);

/// @}

}  // namespace strategy
}  // namespace spindle
