#include "strategy/prebuilt.h"

namespace spindle {
namespace strategy {

Result<Strategy> MakeToyStrategy(const ToyStrategyOptions& options) {
  Strategy s;
  SPINDLE_ASSIGN_OR_RETURN(
      int products,
      s.Add(MakeSelectByTypeBlock("product")));
  SPINDLE_ASSIGN_OR_RETURN(
      int toys, s.Add(MakeFilterByPropertyBlock("category",
                                                options.category),
                      {products}));
  SPINDLE_ASSIGN_OR_RETURN(
      int docs, s.Add(MakeExtractPropertyBlock("description"), {toys}));
  SPINDLE_ASSIGN_OR_RETURN(int query, s.Add(MakeQueryBlock()));
  SPINDLE_ASSIGN_OR_RETURN(
      int ranked, s.Add(MakeRankByTextBlock(options.rank), {docs, query}));
  SPINDLE_RETURN_IF_ERROR(
      s.Add(MakeTopKBlock(options.top_k), {ranked}).status());
  return s;
}

Result<Strategy> MakeAuctionStrategy(const AuctionStrategyOptions& options) {
  Strategy s;
  // 1. Select nodes of type lot.
  SPINDLE_ASSIGN_OR_RETURN(int lots, s.Add(MakeSelectByTypeBlock("lot")));
  SPINDLE_ASSIGN_OR_RETURN(int query, s.Add(MakeQueryBlock()));

  // 2. Left branch: rank lots by their own description.
  SPINDLE_ASSIGN_OR_RETURN(
      int lot_docs, s.Add(MakeExtractPropertyBlock("description"), {lots}));
  SPINDLE_ASSIGN_OR_RETURN(
      int left,
      s.Add(MakeRankByTextBlock(options.rank), {lot_docs, query}));

  // 3. Right branch: traverse to the containing auction, rank auctions by
  // their description, traverse hasAuction backward to get lots again.
  SPINDLE_ASSIGN_OR_RETURN(
      int auctions,
      s.Add(MakeTraverseBlock("hasAuction", Direction::kForward), {lots}));
  SPINDLE_ASSIGN_OR_RETURN(
      int auction_docs,
      s.Add(MakeExtractPropertyBlock("description"), {auctions}));
  SPINDLE_ASSIGN_OR_RETURN(
      int ranked_auctions,
      s.Add(MakeRankByTextBlock(options.rank), {auction_docs, query}));
  SPINDLE_ASSIGN_OR_RETURN(
      int right,
      s.Add(MakeTraverseBlock("hasAuction", Direction::kBackward,
                              Assumption::kMax),
            {ranked_auctions}));

  // 4. Linear mix of the two ranked lot lists.
  SPINDLE_ASSIGN_OR_RETURN(
      int mixed,
      s.Add(MakeMixBlock({options.lot_weight, options.auction_weight}),
            {left, right}));
  SPINDLE_RETURN_IF_ERROR(
      s.Add(MakeTopKBlock(options.top_k), {mixed}).status());
  return s;
}

Result<Strategy> MakeProductionStrategy(
    const ProductionStrategyOptions& options) {
  if (options.branches.empty()) {
    return Status::InvalidArgument(
        "production strategy needs at least one branch");
  }
  Strategy s;
  SPINDLE_ASSIGN_OR_RETURN(int lots, s.Add(MakeSelectByTypeBlock("lot")));
  SPINDLE_ASSIGN_OR_RETURN(int query, s.Add(MakeQueryBlock()));
  int effective_query = query;
  if (options.expand_synonyms) {
    SPINDLE_ASSIGN_OR_RETURN(
        effective_query,
        s.Add(MakeExpandSynonymsBlock(options.synonym_weight), {query}));
  }
  if (options.expand_compounds) {
    SPINDLE_ASSIGN_OR_RETURN(
        effective_query,
        s.Add(MakeExpandCompoundsBlock(options.compound_weight),
              {effective_query}));
  }

  std::vector<int> ranked_branches;
  std::vector<double> weights;
  int auctions = -1;
  for (const auto& branch : options.branches) {
    int nodes = lots;
    if (branch.via_auction) {
      if (auctions < 0) {
        SPINDLE_ASSIGN_OR_RETURN(
            auctions, s.Add(MakeTraverseBlock("hasAuction",
                                              Direction::kForward),
                            {lots}));
      }
      nodes = auctions;
    }
    SPINDLE_ASSIGN_OR_RETURN(
        int docs, s.Add(MakeExtractPropertyBlock(branch.property), {nodes}));
    SPINDLE_ASSIGN_OR_RETURN(
        int ranked, s.Add(MakeRankByTextBlock(options.rank),
                          {docs, effective_query}));
    if (branch.via_auction) {
      SPINDLE_ASSIGN_OR_RETURN(
          ranked, s.Add(MakeTraverseBlock("hasAuction",
                                          Direction::kBackward,
                                          Assumption::kMax),
                        {ranked}));
    }
    ranked_branches.push_back(ranked);
    weights.push_back(branch.weight);
  }

  SPINDLE_ASSIGN_OR_RETURN(
      int mixed, s.Add(MakeMixBlock(std::move(weights)), ranked_branches));
  SPINDLE_RETURN_IF_ERROR(
      s.Add(MakeTopKBlock(options.top_k), {mixed}).status());
  return s;
}

}  // namespace strategy
}  // namespace spindle
