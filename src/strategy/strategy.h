/// \file strategy.h
/// \brief Strategy graphs: wiring blocks into executable search engines
/// (paper §2.4, Figs. 2-3).
///
/// A Strategy is a DAG of blocks. Compile() walks it in topological order,
/// letting every block emit its SpinQL statements into one program —
/// "connecting blocks is a convenient way to express complex search
/// scenarios declaratively"; the combined program is ordinary SpinQL and
/// can be printed, translated to SQL, or executed.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/materialization_cache.h"
#include "spinql/evaluator.h"
#include "storage/catalog.h"
#include "strategy/block.h"

namespace spindle {
namespace strategy {

/// \brief A DAG of strategy blocks.
class Strategy {
 public:
  /// \brief Adds a block wired to the outputs of `inputs` (ids returned by
  /// earlier Add calls). Returns this block's id. Fails if the input count
  /// does not match the block's arity or an input id is unknown.
  Result<int> Add(BlockPtr block, std::vector<int> inputs = {});

  size_t num_blocks() const { return nodes_.size(); }

  /// \brief Human-readable listing of blocks and wiring.
  std::string Describe() const;

  /// \brief Compiles the whole graph into one SpinQL program whose final
  /// binding is the last-added block's output.
  Result<spinql::Program> Compile() const;

 private:
  struct GraphNode {
    BlockPtr block;
    std::vector<int> inputs;
  };
  std::vector<GraphNode> nodes_;
};

/// \brief Executes strategies against a catalog, with one persistent
/// evaluator so on-demand indexes and cache tables survive across requests
/// (the "hot database" of the paper's measurements).
class StrategyExecutor {
 public:
  /// \param catalog must contain the triple tables the strategy reads.
  /// \param cache adaptive materialization cache (nullptr disables).
  StrategyExecutor(Catalog* catalog, MaterializationCache* cache)
      : catalog_(catalog), evaluator_(catalog, cache) {}

  /// \brief Runs `strategy` for a user query: registers the (data, p)
  /// singleton `query` table, compiles (with per-strategy program
  /// caching), evaluates, and returns the result relation.
  Result<ProbRelation> Run(const Strategy& strategy,
                           const std::string& query_text);

  /// \brief Runs an already-compiled program for a query.
  Result<ProbRelation> RunProgram(const spinql::Program& program,
                                  const std::string& query_text);

  spinql::Evaluator& evaluator() { return evaluator_; }

  /// \brief Toggles the SpinQL plan optimizer (on by default). Compiled
  /// strategy programs are normalized (select fusion, weight
  /// distribution/fusion, union flattening, ...) before evaluation;
  /// rewrites are exact, see spinql/optimizer.h.
  void set_optimize(bool on) { optimize_ = on; }

  /// \brief The name of the per-request query table ("query").
  static constexpr const char* kQueryTable = "query";

 private:
  Catalog* catalog_;
  spinql::Evaluator evaluator_;
  bool optimize_ = true;
};

}  // namespace strategy
}  // namespace spindle
