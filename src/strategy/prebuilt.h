/// \file prebuilt.h
/// \brief The paper's strategies, ready to run.
///
/// - MakeToyStrategy: Fig. 2 — keyword search on a product database,
///   restricted to the description of products in category "toy".
/// - MakeAuctionStrategy: Fig. 3 — rank auction lots by their own
///   description and by the description of their containing auction,
///   mixed linearly.
/// - MakeProductionStrategy: §3's "industrial-strength" variant — multiple
///   parallel keyword-search branches plus query expansion with synonyms.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "strategy/strategy.h"

namespace spindle {
namespace strategy {

/// \brief Options for the Fig. 2 toy strategy.
struct ToyStrategyOptions {
  std::string category = "toy";
  size_t top_k = 10;
  spinql::RankSpec rank;
};

/// \brief Fig. 2: select products of `category`, extract descriptions,
/// rank by text against the user query, top-k.
Result<Strategy> MakeToyStrategy(const ToyStrategyOptions& options = {});

/// \brief Options for the Fig. 3 auction strategy.
struct AuctionStrategyOptions {
  double lot_weight = 0.7;      ///< weight of the lot-description branch
  double auction_weight = 0.3;  ///< weight of the auction-description branch
  size_t top_k = 10;
  spinql::RankSpec rank;
};

/// \brief Fig. 3: select lots; rank by lot description (left branch) and
/// by containing-auction description via hasAuction traversal forth and
/// back (right branch); linear mix; top-k.
Result<Strategy> MakeAuctionStrategy(
    const AuctionStrategyOptions& options = {});

/// \brief Options for the production variant.
struct ProductionStrategyOptions {
  /// Properties ranked in parallel branches, each (property, weight,
  /// traverse_via_auction). The default five branches mirror "5 parallel
  /// keyword search branches".
  struct Branch {
    std::string property;
    double weight;
    bool via_auction = false;
  };
  std::vector<Branch> branches = {
      {"description", 0.35, false}, {"title", 0.25, false},
      {"tags", 0.1, false},         {"sellerNotes", 0.1, false},
      {"description", 0.2, true},
  };
  double synonym_weight = 0.3;  ///< weight of expanded query terms
  bool expand_synonyms = true;
  /// Adjacent query tokens also search as concatenated compounds.
  bool expand_compounds = false;
  double compound_weight = 0.3;
  size_t top_k = 10;
  spinql::RankSpec rank;
};

/// \brief §3 production variant: query expansion with synonyms, N parallel
/// rank branches over different lot/auction properties, linear mix, top-k.
Result<Strategy> MakeProductionStrategy(
    const ProductionStrategyOptions& options = {});

}  // namespace strategy
}  // namespace spindle
