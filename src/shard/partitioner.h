/// \file partitioner.h
/// \brief Deterministic document partitioning for sharded serving.
///
/// A collection is split document-wise into N disjoint partitions by a
/// stable hash of the docID — no coordination state, no assignment table:
/// any process that knows (docID, N) computes the same shard. The
/// partitioner also produces the shard-side artifacts: per-shard
/// sub-catalogs and per-shard snapshot files, each carrying the
/// full-collection GlobalStats so every shard can score its partition
/// with global statistics (docs/sharding.md).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "shard/global_stats.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "text/analyzer.h"

namespace spindle {
namespace shard {

/// \brief Stable document → shard assignment.
class Partitioner {
 public:
  /// \brief The shard in [0, num_shards) that owns `doc_id`. Stable
  /// across processes and versions: Murmur3-finalized hash of the docID
  /// modulo the shard count. num_shards == 0 is treated as 1.
  static uint32_t Assign(int64_t doc_id, uint32_t num_shards) {
    if (num_shards <= 1) return 0;
    return static_cast<uint32_t>(HashInt64(static_cast<uint64_t>(doc_id)) %
                                 num_shards);
  }
};

/// \brief The rows of `docs` assigned to `shard` under
/// Partitioner::Assign, in original order. The docID column is the field
/// named "docID", else the first int64 column. Dict-encoded string
/// columns keep sharing their dictionary (code gather, no re-hash).
Result<RelationPtr> PartitionCollection(const RelationPtr& docs,
                                        uint32_t shard, uint32_t num_shards);

/// \brief Splits a full catalog into `num_shards` disjoint sub-catalogs:
/// collection-shaped tables (an int64 docID column plus a string column)
/// are partitioned by docID; any other table is replicated to every shard
/// unchanged (dimension tables must be visible everywhere).
Result<std::vector<std::shared_ptr<Catalog>>> PartitionCatalog(
    const Catalog& full, uint32_t num_shards);

/// \brief Everything WriteShardSnapshots produced for one shard.
struct ShardSnapshotInfo {
  std::string path;
  int64_t num_docs = 0;  ///< partition rows of the first collection table
};

/// \brief Partitions `full`, builds each shard's indexes, merges the
/// shards' statistics into the full-collection GlobalStats (exact: the
/// partitions are disjoint), and writes one snapshot per shard to
/// "<path_prefix>.shard<i>.snap" — catalog + indexes + a "gstats"
/// section. A server restored from such a snapshot serves bit-identical
/// sharded queries with zero startup indexing.
Result<std::vector<ShardSnapshotInfo>> WriteShardSnapshots(
    const Catalog& full, const AnalyzerOptions& analyzer,
    uint32_t num_shards, const std::string& path_prefix);

}  // namespace shard
}  // namespace spindle
