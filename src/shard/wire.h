/// \file wire.h
/// \brief Text encoding of sharded-search requests for the line protocol.
///
/// The coordinator resolves a query once against the global dictionary
/// and ships the result to every shard as a single SEARCHG line:
///
///   SEARCHG <collection> <k> <deadline_ms> <model> <k1> <b> <mu>
///           <lambda> <num_docs> <total_postings> <avg_doc_len>
///           <nterms> {<df> <cf> <term>}...
///
/// Doubles travel as %.17g, which round-trips IEEE-754 exactly — the
/// encode/decode pair preserves bit-identity end to end. Analyzer output
/// terms are alphanumeric, so space-delimited fields are unambiguous.
/// `deadline_ms` is the *remaining budget* at send time (0 = none), never
/// a wall-clock deadline: shard and coordinator clocks are unrelated.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "ir/searcher.h"

namespace spindle {
namespace shard {

/// \brief Renders one SEARCHG request line (including the command word).
/// A non-zero `trace_id` prepends the distributed-trace token (see
/// FormatTraceToken) to the arguments; the default emits bytes identical
/// to the pre-token wire format.
std::string EncodeSearchG(const std::string& collection, int64_t deadline_ms,
                          const SearchOptions& options,
                          const QueryGlobalStats& global,
                          uint64_t trace_id = 0, uint64_t parent_span = 0);

/// \brief Parses the argument part of a SEARCHG line (everything after
/// the command word).
Status ParseSearchG(std::string rest, std::string* collection,
                    int64_t* deadline_ms, SearchOptions* options,
                    QueryGlobalStats* global);

/// \brief "%.17g" — shared with the server's row serializer so scores
/// printed by a shard, re-parsed by the coordinator and re-printed to the
/// client are byte-identical to the single-node output.
std::string FormatDouble(double v);

/// \brief Renders the optional distributed-trace token a coordinator may
/// prepend to a command's arguments: `tid=<hex trace id>:<parent span>`.
/// Handlers strip it before command-specific parsing, so every command
/// accepts it; requests without one are byte-identical to the pre-token
/// wire format.
std::string FormatTraceToken(uint64_t trace_id, uint64_t parent_span);

/// \brief Parses a `tid=<hex>:<dec>` token. Returns false (leaving the
/// outputs untouched) when `word` is not a well-formed trace token.
bool ParseTraceToken(const std::string& word, uint64_t* trace_id,
                     uint64_t* parent_span);

}  // namespace shard
}  // namespace spindle
