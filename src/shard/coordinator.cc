#include "shard/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "server/line_server.h"
#include "shard/partitioner.h"
#include "shard/wire.h"

namespace spindle {
namespace shard {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            t0)
          .count());
}

/// Latency ring capacity per shard for percentile hedging.
constexpr size_t kLatencyRingSize = 256;

}  // namespace

// ---------------------------------------------------------------------------
// Backends

Result<RelationPtr> LocalShardBackend::SearchSharded(
    const std::string& collection, const QueryGlobalStats& global,
    const SearchOptions& options, int64_t deadline_ms,
    CancelTokenPtr token) {
  server::ShardSearchRequest req;
  req.collection = collection;
  req.global = global;
  req.options = options;
  // The coordinator owns deadline policy: a remaining budget > 0 is
  // enforced as-is, otherwise the service default is explicitly disabled
  // (never stacked on top of the coordinator's).
  req.request.deadline_ms = deadline_ms > 0 ? deadline_ms : -1;
  req.request.token = std::move(token);
  // Distributed trace propagation, in-process edition: hand the ambient
  // trace identity over so the service records (and retains) its spans
  // under the coordinator's trace id.
  const obs::TraceContext tctx = obs::CurrentTraceContext();
  if (tctx.tracer != nullptr) {
    req.request.foreign_trace_id = tctx.tracer->trace_id();
    req.request.foreign_parent_span = tctx.span;
  }
  Result<server::QueryResponse> resp = service_->SearchSharded(req);
  if (!resp.ok()) return resp.status();
  return resp.MoveValueOrDie().rows;
}

Result<GlobalStatsPtr> LocalShardBackend::FetchGlobalStats(
    const std::string& collection) {
  GlobalStatsPtr stats = service_->GetGlobalStats(collection);
  if (stats == nullptr) {
    return Status::NotFound("shard " + name_ +
                            " has no global statistics for collection: " +
                            collection);
  }
  return stats;
}

Result<uint64_t> LocalShardBackend::Write(const std::string& collection,
                                          const ingest::WriteOp& op) {
  server::WriteRequest req;
  req.collection = collection;
  req.op = op;
  Result<server::QueryResponse> resp = service_->Write(req);
  if (!resp.ok()) return resp.status();
  const Relation& rows = *resp.ValueOrDie().rows;
  return static_cast<uint64_t>(rows.column(0).Int64At(0));
}

Result<int64_t> LocalShardBackend::Flush(const std::string& collection) {
  server::FlushRequest req;
  req.collection = collection;
  Result<server::QueryResponse> resp = service_->Flush(req);
  if (!resp.ok()) return resp.status();
  const Relation& rows = *resp.ValueOrDie().rows;
  return rows.column(1).Int64At(0);
}

Result<GlobalStatsPtr> LocalShardBackend::FetchLocalStats(
    const std::string& collection) {
  return service_->ComputeLocalStats(collection);
}

Result<std::string> LocalShardBackend::FetchMetricsText() {
  return service_->MetricsPrometheus();
}

Result<std::vector<std::string>> LocalShardBackend::PullTraceRows(
    uint64_t trace_id) {
  return service_->PullTraceRows(trace_id);
}

Result<server::LineClientPool::Lease> RemoteShardBackend::Checkout(
    int64_t read_timeout_ms) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease lease,
                           pool_.Acquire(host_, port_));
  SPINDLE_RETURN_IF_ERROR(lease->SetReadTimeout(read_timeout_ms));
  return lease;
}

Result<RelationPtr> RemoteShardBackend::SearchSharded(
    const std::string& collection, const QueryGlobalStats& global,
    const SearchOptions& options, int64_t deadline_ms,
    CancelTokenPtr token) {
  if (token != nullptr && token->cancelled()) return token->ToStatus();
  // Bound the response wait by the remaining budget (plus wire slack) so
  // a dead shard cannot park a dispatch thread past the deadline.
  const int64_t read_ms = deadline_ms > 0 ? deadline_ms + 100
                                          : opts_.default_read_timeout_ms;
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(read_ms));
  // Propagate the ambient trace identity (the coordinator's shard_wait
  // span) so the shard records its spans under our trace id; untraced
  // dispatches send byte-identical request lines.
  uint64_t trace_id = 0, parent_span = 0;
  const obs::TraceContext tctx = obs::CurrentTraceContext();
  if (tctx.tracer != nullptr) {
    trace_id = tctx.tracer->trace_id();
    parent_span = tctx.span;
  }
  Result<server::WireResponse> resp = client->Call(EncodeSearchG(
      collection, deadline_ms, options, global, trace_id, parent_span));
  if (!resp.ok()) return resp.status();
  if (token != nullptr && token->cancelled()) return token->ToStatus();
  std::vector<int64_t> ids;
  std::vector<double> scores;
  const std::vector<std::string>& rows = resp.ValueOrDie().rows;
  ids.reserve(rows.size());
  scores.reserve(rows.size());
  for (const std::string& row : rows) {
    const size_t tab = row.find('\t');
    errno = 0;
    char* end = nullptr;
    const long long id = std::strtoll(row.c_str(), &end, 10);
    bool ok_id = errno == 0 && end == row.c_str() + tab;
    errno = 0;
    // %.17g wire doubles reparse to the exact shard-side bits.
    const double score =
        tab == std::string::npos
            ? 0.0
            : std::strtod(row.c_str() + tab + 1, &end);
    if (tab == std::string::npos || !ok_id || errno != 0 ||
        end != row.c_str() + row.size()) {
      return Status::Internal("shard " + name_ +
                              " returned a malformed row: " + row);
    }
    ids.push_back(static_cast<int64_t>(id));
    scores.push_back(score);
  }
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(ids)));
  cols.push_back(Column::MakeFloat64(std::move(scores)));
  return Relation::Make(
      Schema({{"docID", DataType::kInt64}, {"score", DataType::kFloat64}}),
      std::move(cols));
}

Status RemoteShardBackend::Ping() {
  Result<server::LineClientPool::Lease> client =
      Checkout(opts_.connect_timeout_ms);
  if (!client.ok()) return client.status();
  return client.ValueOrDie()->Ping();
}

Result<GlobalStatsPtr> RemoteShardBackend::FetchGlobalStats(
    const std::string& collection) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  Result<server::WireResponse> resp = client->Call("GSTATS " + collection);
  if (!resp.ok()) return resp.status();
  return GlobalStats::FromWireRows(resp.ValueOrDie().rows);
}

namespace {

/// Parses a "key=<int>" token out of a write/flush response row.
Result<int64_t> ParseTokenInt(const std::string& row,
                              const std::string& key) {
  const std::string needle = key + "=";
  size_t pos = row.find(needle);
  if (pos == std::string::npos) {
    return Status::Internal("response row missing " + key + ": " + row);
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(row.c_str() + pos + needle.size(), &end, 10);
  if (errno == ERANGE || end == row.c_str() + pos + needle.size()) {
    return Status::Internal("malformed " + key + " token: " + row);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<uint64_t> RemoteShardBackend::Write(const std::string& collection,
                                           const ingest::WriteOp& op) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  Result<server::WireResponse> resp = [&]() {
    switch (op.kind) {
      case ingest::WriteOp::Kind::kAdd:
        return client->Add(collection, op.doc_id, op.text);
      case ingest::WriteOp::Kind::kUpdate:
        return client->Update(collection, op.doc_id, op.text);
      case ingest::WriteOp::Kind::kDelete:
        return client->Delete(collection, op.doc_id);
    }
    return Result<server::WireResponse>(
        Status::Internal("unknown write kind"));
  }();
  if (!resp.ok()) return resp.status();
  if (resp.ValueOrDie().rows.size() != 1) {
    return Status::Internal("shard " + name_ +
                            " returned a malformed write response");
  }
  SPINDLE_ASSIGN_OR_RETURN(
      int64_t epoch, ParseTokenInt(resp.ValueOrDie().rows[0], "epoch"));
  return static_cast<uint64_t>(epoch);
}

Result<int64_t> RemoteShardBackend::Flush(const std::string& collection) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  Result<server::WireResponse> resp = client->Flush(collection);
  if (!resp.ok()) return resp.status();
  if (resp.ValueOrDie().rows.size() != 1) {
    return Status::Internal("shard " + name_ +
                            " returned a malformed flush response");
  }
  return ParseTokenInt(resp.ValueOrDie().rows[0], "docs");
}

Result<GlobalStatsPtr> RemoteShardBackend::FetchLocalStats(
    const std::string& collection) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  Result<server::WireResponse> resp = client->Call("GSTATSL " + collection);
  if (!resp.ok()) return resp.status();
  return GlobalStats::FromWireRows(resp.ValueOrDie().rows);
}

Result<std::string> RemoteShardBackend::FetchMetricsText() {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  Result<server::WireResponse> resp = client->Call("METRICS");
  if (!resp.ok()) return resp.status();
  std::string text;
  for (const std::string& row : resp.ValueOrDie().rows) {
    text += row;
    text += '\n';
  }
  return text;
}

Result<std::vector<std::string>> RemoteShardBackend::PullTraceRows(
    uint64_t trace_id) {
  SPINDLE_ASSIGN_OR_RETURN(server::LineClientPool::Lease client,
                           Checkout(opts_.default_read_timeout_ms));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(trace_id));
  Result<server::WireResponse> resp =
      client->Call(std::string("TRACEPULL ") + buf);
  if (!resp.ok()) return resp.status();
  return resp.MoveValueOrDie().rows;
}

// ---------------------------------------------------------------------------
// Coordinator

/// Shared state of one request's scatter-gather. Dispatch threads keep it
/// alive via shared_ptr, so a straggler that loses to the deadline can
/// still write its slot (harmlessly) after Search returned.
struct ShardCoordinator::GatherState {
  std::mutex mu;
  std::condition_variable cv;

  // Request inputs, immutable after construction.
  std::string collection;
  std::shared_ptr<const QueryGlobalStats> global;
  SearchOptions options;
  Clock::time_point start;
  Clock::time_point deadline;  ///< meaningful when has_deadline
  bool has_deadline = false;

  struct Slot {
    bool done = false;  ///< a winning result or a final failure recorded
    bool has_result = false;
    RelationPtr rows;
    Status error = Status::OK();  ///< last failure seen on this slot
    int outstanding = 0;          ///< dispatches in flight
    bool hedged = false;          ///< replica dispatch issued
    bool hedge_won = false;
    uint64_t latency_us = 0;
    CancelTokenPtr tokens[2];  ///< [0] primary, [1] hedge
    // Distributed-trace bookkeeping, written only on traced requests:
    // which backend each copy went to, the coordinator-clock send /
    // receive timestamps bracketing the dispatch (the clock-offset
    // anchor) and the shard_wait / shard_hedge span the shard's spans
    // attach under.
    ShardBackendPtr dispatched[2];
    uint64_t sent_ns[2] = {0, 0};
    uint64_t recv_ns[2] = {0, 0};
    uint64_t wait_span[2] = {0, 0};
  };
  std::vector<Slot> slots;
  size_t done_count = 0;
};

ShardCoordinator::ShardCoordinator(CoordinatorOptions options,
                                   AnalyzerOptions analyzer)
    : opts_(options),
      analyzer_options_(std::move(analyzer)),
      slowlog_(server::SlowLogOptions{options.slow_query_ms,
                                      options.slow_sample,
                                      options.slow_log_capacity}) {}

ShardCoordinator::~ShardCoordinator() {
  stopping_.store(true, std::memory_order_release);
  // Every Search trips its slots' tokens before returning, so in-flight
  // dispatches are already cancelled; wait for their threads to drain
  // (bounded by the backends' own read timeouts).
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ShardCoordinator::AddShard(ShardBackendPtr primary,
                                ShardBackendPtr replica) {
  auto shard = std::make_unique<Shard>();
  shard->primary = std::move(primary);
  shard->replica = std::move(replica);
  shards_.push_back(std::move(shard));
}

Status ShardCoordinator::SetGlobalStats(const std::string& collection,
                                        GlobalStatsPtr stats) {
  if (stats == nullptr) {
    return Status::InvalidArgument("SetGlobalStats: null stats");
  }
  const std::string sig = analyzer_options_.Signature();
  if (stats->analyzer_signature() != sig) {
    return Status::InvalidArgument(
        "global statistics analyzer " + stats->analyzer_signature() +
        " does not match the coordinator analyzer " + sig);
  }
  stats_[collection] = std::move(stats);
  return Status::OK();
}

GlobalStatsPtr ShardCoordinator::GetGlobalStats(
    const std::string& collection) const {
  auto it = stats_.find(collection);
  return it == stats_.end() ? nullptr : it->second;
}

Status ShardCoordinator::BootstrapGlobalStats(
    const std::string& collection) {
  if (shards_.empty()) {
    return Status::InvalidArgument("no shards configured");
  }
  GlobalStatsPtr first;
  std::string first_bytes;
  std::string first_from;
  Status last = Status::Unavailable("no shard reachable");
  for (const std::unique_ptr<Shard>& s : shards_) {
    Result<GlobalStatsPtr> r = s->primary->FetchGlobalStats(collection);
    if (!r.ok()) {
      last = r.status();
      continue;
    }
    // Every shard of one partitioning stores the identical statistics
    // blob; a mismatch means the topology mixes partitionings (or
    // collections) and would serve wrong rankings — refuse to start.
    std::string bytes = r.ValueOrDie()->Serialize();
    if (first == nullptr) {
      first = r.MoveValueOrDie();
      first_bytes = std::move(bytes);
      first_from = s->primary->name();
    } else if (bytes != first_bytes) {
      return Status::InvalidArgument(
          "shards " + first_from + " and " + s->primary->name() +
          " store different global statistics for collection '" +
          collection + "' — mixed partitionings?");
    }
  }
  if (first == nullptr) {
    return Status::Unavailable(
        "could not fetch global statistics for collection '" + collection +
        "' from any shard: " + last.message());
  }
  return SetGlobalStats(collection, std::move(first));
}

int64_t ShardCoordinator::HedgeDelayMs(Shard& s) const {
  if (opts_.hedge_after_ms > 0) return opts_.hedge_after_ms;
  if (opts_.hedge_percentile > 0.0 && opts_.hedge_percentile <= 1.0) {
    std::lock_guard<std::mutex> lock(s.lat_mu);
    if (s.lat_us.size() >= opts_.hedge_min_samples) {
      std::vector<uint64_t> v = s.lat_us;
      std::sort(v.begin(), v.end());
      size_t idx = static_cast<size_t>(opts_.hedge_percentile *
                                       static_cast<double>(v.size()));
      if (idx >= v.size()) idx = v.size() - 1;
      return std::max<int64_t>(1, static_cast<int64_t>(v[idx] / 1000));
    }
  }
  return -1;
}

void ShardCoordinator::RecordLatency(Shard& s, uint64_t us) {
  std::lock_guard<std::mutex> lock(s.lat_mu);
  if (s.lat_us.size() < kLatencyRingSize) {
    s.lat_us.push_back(us);
  } else {
    s.lat_us[s.lat_next] = us;
    s.lat_next = (s.lat_next + 1) % kLatencyRingSize;
  }
}

void ShardCoordinator::Dispatch(const std::shared_ptr<GatherState>& state,
                                size_t idx, const ShardBackendPtr& backend,
                                bool is_hedge) {
  CancelTokenPtr token = std::make_shared<CancelToken>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    GatherState::Slot& slot = state->slots[idx];
    slot.outstanding++;
    slot.tokens[is_hedge ? 1 : 0] = token;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    inflight_++;
  }
  // Capture the caller's trace context so the per-shard wait span parents
  // under the request's scatter span even though it runs on its own
  // thread. `this` stays valid: the destructor drains inflight_ to zero.
  const obs::TraceContext tctx = obs::CurrentTraceContext();
  Shard* shard = shards_[idx].get();
  std::thread([this, state, idx, backend, is_hedge, token, tctx,
               shard]() {
    const Clock::time_point t0 = Clock::now();
    // Remaining budget at dispatch time — relative, never wall-clock: a
    // hedge issued 80ms into a 100ms request ships a 20ms budget.
    int64_t remaining_ms = 0;
    if (state->has_deadline) {
      const int64_t left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              state->deadline - t0)
              .count();
      remaining_ms = left > 1 ? left : 1;
    }
    const int ci = is_hedge ? 1 : 0;
    Result<RelationPtr> r = [&]() -> Result<RelationPtr> {
      obs::ScopedTraceContext trace_scope(tctx);
      obs::Span span("coord", is_hedge ? "shard_hedge" : "shard_wait");
      if (span.active()) {
        span.Note("shard", backend->name());
        // Publish the trace anchors before the call: a straggler's spans
        // can then be pulled (and attached) while it is still in flight.
        std::lock_guard<std::mutex> lock(state->mu);
        GatherState::Slot& slot = state->slots[idx];
        slot.dispatched[ci] = backend;
        slot.wait_span[ci] = span.id();
        slot.sent_ns[ci] = obs::NowNs();
      }
      try {
        return backend->SearchSharded(state->collection, *state->global,
                                      state->options, remaining_ms, token);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("shard backend threw: ") +
                                e.what());
      } catch (...) {
        return Status::Internal("shard backend threw a non-standard "
                                "exception");
      }
    }();
    const uint64_t us = ElapsedUs(t0);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      GatherState::Slot& slot = state->slots[idx];
      slot.outstanding--;
      if (slot.sent_ns[ci] != 0) slot.recv_ns[ci] = obs::NowNs();
      if (!slot.done) {
        if (r.ok()) {
          slot.done = true;
          slot.has_result = true;
          slot.rows = r.MoveValueOrDie();
          slot.latency_us = us;
          slot.hedge_won = is_hedge;
          state->done_count++;
          // Win accounting happens before the notify so coordinator
          // metrics are coherent by the time Search() returns.
          RecordLatency(*shard, us);
          if (is_hedge) {
            metrics_.hedge_wins.fetch_add(1, std::memory_order_relaxed);
          }
          // First reply wins; cancel the losing twin dispatch.
          CancelTokenPtr& other = slot.tokens[is_hedge ? 0 : 1];
          if (other != nullptr) other->Cancel(StatusCode::kCancelled);
        } else {
          slot.error = r.status();
          metrics_.shard_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      state->cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      inflight_--;
      drain_cv_.notify_all();
    }
  }).detach();
}

Result<CoordSearchResponse> ShardCoordinator::Search(
    const CoordSearchRequest& req) {
  const Clock::time_point t0 = Clock::now();
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
  if (shards_.empty()) {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("no shards configured");
  }
  if (req.options.top_k == 0) {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "sharded search requires top_k > 0");
  }
  if (req.options.phrase_boost > 0.0) {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    return Status::NotImplemented(
        "phrase boost is not supported on sharded queries");
  }
  auto stats_it = stats_.find(req.collection);
  if (stats_it == stats_.end()) {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no global statistics for collection: " +
                            req.collection);
  }

  CoordSearchResponse resp;
  std::shared_ptr<obs::Tracer> tracer;
  if (opts_.trace_requests || req.trace) {
    tracer = std::make_shared<obs::Tracer>();
    resp.trace_id = tracer->trace_id();
  }
  obs::ScopedTracer trace_scope(tracer.get());
  auto fail = [&](Status st) -> Result<CoordSearchResponse> {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    return st;
  };

  Result<CoordSearchResponse> out = [&]() -> Result<CoordSearchResponse> {
    obs::Span root("coord", "search");
    if (root.active()) {
      root.Add("shards", static_cast<int64_t>(shards_.size()));
      root.Add("top_k", static_cast<int64_t>(req.options.top_k));
      root.Note("model", RankModelName(req.options.model));
    }

    // Resolve: one analysis of the query, against the global dictionary.
    SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer,
                             Analyzer::Make(analyzer_options_));
    SPINDLE_ASSIGN_OR_RETURN(
        QueryGlobalStats global,
        stats_it->second->ResolveQuery(req.query, analyzer));

    const int64_t deadline_ms = req.deadline_ms != 0
                                    ? req.deadline_ms
                                    : opts_.default_deadline_ms;
    auto state = std::make_shared<GatherState>();
    state->collection = req.collection;
    state->global =
        std::make_shared<const QueryGlobalStats>(std::move(global));
    state->options = req.options;
    state->start = t0;
    state->has_deadline = deadline_ms > 0;
    if (state->has_deadline) {
      state->deadline = t0 + std::chrono::milliseconds(deadline_ms);
    }
    state->slots.resize(shards_.size());

    // Scatter.
    {
      obs::Span scatter("coord", "scatter");
      for (size_t i = 0; i < shards_.size(); ++i) {
        Dispatch(state, i, shards_[i]->primary, /*is_hedge=*/false);
      }
    }

    // Gather, with failover and latency hedging.
    {
      obs::Span gather("coord", "gather");
      std::unique_lock<std::mutex> lock(state->mu);
      for (;;) {
        // Resolve slots whose dispatches all failed: fail over to the
        // replica once, else record the slot as finally failed.
        bool changed = false;
        for (size_t i = 0; i < state->slots.size(); ++i) {
          GatherState::Slot& slot = state->slots[i];
          if (slot.done || slot.outstanding > 0) continue;
          if (shards_[i]->replica != nullptr && !slot.hedged) {
            slot.hedged = true;
            resp.hedges++;
            metrics_.hedges_issued.fetch_add(1,
                                             std::memory_order_relaxed);
            lock.unlock();
            Dispatch(state, i, shards_[i]->replica, /*is_hedge=*/true);
            lock.lock();
          } else {
            slot.done = true;
            state->done_count++;
          }
          changed = true;
        }
        if (state->done_count == state->slots.size()) break;
        const Clock::time_point now = Clock::now();
        if (state->has_deadline && now >= state->deadline) {
          // Deadline: trip every straggler and mark its slot failed.
          for (GatherState::Slot& slot : state->slots) {
            if (slot.done) continue;
            for (CancelTokenPtr& t : slot.tokens) {
              if (t != nullptr) t->Cancel(StatusCode::kDeadlineExceeded);
            }
            if (slot.error.ok()) {
              slot.error = Status::DeadlineExceeded(
                  "shard did not answer within the deadline");
            }
            metrics_.shard_failures.fetch_add(1,
                                              std::memory_order_relaxed);
            slot.done = true;
            state->done_count++;
          }
          break;
        }
        if (changed) continue;  // re-evaluate before sleeping
        // Latency hedging: issue due replica dispatches.
        Clock::time_point wake = state->has_deadline
                                     ? state->deadline
                                     : Clock::time_point::max();
        for (size_t i = 0; i < state->slots.size(); ++i) {
          GatherState::Slot& slot = state->slots[i];
          if (slot.done || slot.hedged || shards_[i]->replica == nullptr) {
            continue;
          }
          const int64_t delay = HedgeDelayMs(*shards_[i]);
          if (delay < 0) continue;
          const Clock::time_point due =
              state->start + std::chrono::milliseconds(delay);
          if (now >= due) {
            slot.hedged = true;
            resp.hedges++;
            metrics_.hedges_issued.fetch_add(1,
                                             std::memory_order_relaxed);
            lock.unlock();
            Dispatch(state, i, shards_[i]->replica, /*is_hedge=*/true);
            lock.lock();
          } else {
            wake = std::min(wake, due);
          }
        }
        if (wake == Clock::time_point::max()) {
          state->cv.wait(lock);
        } else {
          state->cv.wait_until(lock, wake);
        }
      }

      // The request is decided: trip every remaining token so straggler
      // dispatches (hedge losers, post-deadline work) stop promptly.
      for (GatherState::Slot& slot : state->slots) {
        for (CancelTokenPtr& t : slot.tokens) {
          if (t != nullptr) t->Cancel(StatusCode::kCancelled);
        }
      }
    }

    // Collect outcomes.
    std::vector<RelationPtr> shard_rows;
    Status first_error = Status::OK();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      for (size_t i = 0; i < state->slots.size(); ++i) {
        GatherState::Slot& slot = state->slots[i];
        if (slot.has_result) {
          shard_rows.push_back(slot.rows);
        } else {
          resp.failed_shards.push_back(shards_[i]->primary->name());
          if (first_error.ok()) first_error = slot.error;
        }
      }
    }
    if (!resp.failed_shards.empty()) {
      std::string names;
      for (const std::string& n : resp.failed_shards) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      if (opts_.partial == PartialPolicy::kFail) {
        return Status::Unavailable(
            "shard(s) failed: " + names + " (" + first_error.message() +
            ")");
      }
      if (shard_rows.empty()) {
        // Nothing to degrade to.
        return Status::Unavailable("all shards failed: " + names + " (" +
                                   first_error.message() + ")");
      }
      resp.partial = true;
    }

    // Merge: concatenate the local top-k lists and keep the global
    // top-k under (score desc, docID asc). Disjoint partitions + global
    // statistics make this exact — every global winner is in its shard's
    // list with the identical score bits.
    {
      obs::Span merge("coord", "merge");
      struct Entry {
        double score;
        int64_t doc;
      };
      std::vector<Entry> entries;
      for (const RelationPtr& rel : shard_rows) {
        if (rel->num_columns() < 2 ||
            rel->column(0).type() != DataType::kInt64 ||
            rel->column(1).type() != DataType::kFloat64) {
          return Status::Internal(
              "shard returned an unexpected result schema: " +
              rel->schema().ToString());
        }
        for (size_t r = 0; r < rel->num_rows(); ++r) {
          entries.push_back(
              {rel->column(1).Float64At(r), rel->column(0).Int64At(r)});
        }
      }
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.doc < b.doc;
                });
      if (entries.size() > req.options.top_k) {
        entries.resize(req.options.top_k);
      }
      if (merge.active()) {
        merge.Add("candidates", static_cast<int64_t>(entries.size()));
      }
      std::vector<int64_t> ids;
      std::vector<double> scores;
      ids.reserve(entries.size());
      scores.reserve(entries.size());
      for (const Entry& e : entries) {
        ids.push_back(e.doc);
        scores.push_back(e.score);
      }
      std::vector<Column> cols;
      cols.push_back(Column::MakeInt64(std::move(ids)));
      cols.push_back(Column::MakeFloat64(std::move(scores)));
      SPINDLE_ASSIGN_OR_RETURN(
          resp.rows,
          Relation::Make(Schema({{"docID", DataType::kInt64},
                                 {"score", DataType::kFloat64}}),
                         std::move(cols)));
    }

    // The answer is final — now splice every dispatched shard's spans
    // (including hedge losers and cancelled stragglers) onto this
    // timeline. Purely additive: pull failures only make the trace less
    // complete, never the answer.
    if (tracer != nullptr) ImportShardTraces(tracer.get(), state);
    return std::move(resp);
  }();

  if (tracer != nullptr) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_log_.push_back(tracer);
    while (trace_log_.size() > opts_.trace_log_capacity &&
           !trace_log_.empty()) {
      trace_log_.pop_front();
    }
  }

  const uint64_t latency_us = ElapsedUs(t0);
  metrics_.latency_us.Record(latency_us);
  if (slowlog_.enabled()) {
    bool sampled = false;
    if (slowlog_.ShouldRecord(latency_us, &sampled)) {
      server::SlowLogEntry e;
      e.at_ns = obs::NowNs();
      e.kind = "search";
      e.text = req.collection + " " + req.query;
      e.latency_us = latency_us;
      e.trace_id = tracer != nullptr ? tracer->trace_id() : 0;
      e.sampled = sampled;
      if (out.ok()) {
        const CoordSearchResponse& r = out.ValueOrDie();
        e.status = r.partial ? "partial" : "ok";
        std::string detail = "hedges=" + std::to_string(r.hedges);
        for (const std::string& n : r.failed_shards) detail += " failed=" + n;
        e.detail = std::move(detail);
      } else {
        e.status = StatusCodeName(out.status().code());
      }
      slowlog_.Record(std::move(e));
      if (tracer != nullptr) {
        // Pin the exemplar so its TRACEPULL id outlives the rolling
        // trace log.
        std::lock_guard<std::mutex> lock(trace_mu_);
        pinned_traces_.push_back(tracer);
        while (pinned_traces_.size() > opts_.slow_log_capacity &&
               !pinned_traces_.empty()) {
          pinned_traces_.pop_front();
        }
      }
    }
  }

  if (!out.ok()) return fail(out.status());
  CoordSearchResponse final_resp = out.MoveValueOrDie();
  final_resp.latency_us = latency_us;
  final_resp.trace = tracer;
  if (final_resp.partial) {
    metrics_.requests_partial.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  }
  return final_resp;
}

void ShardCoordinator::ImportShardTraces(
    obs::Tracer* tracer, const std::shared_ptr<GatherState>& state) {
  struct PullTarget {
    ShardBackendPtr backend;
    uint64_t attach = 0;
    uint64_t sent = 0;
    uint64_t recv = 0;
  };
  std::vector<PullTarget> targets;
  {
    // Copy the anchors out so the (possibly remote) pulls below never
    // hold the gather mutex.
    std::lock_guard<std::mutex> lock(state->mu);
    for (GatherState::Slot& slot : state->slots) {
      for (int c = 0; c < 2; ++c) {
        if (slot.dispatched[c] == nullptr) continue;
        targets.push_back({slot.dispatched[c], slot.wait_span[c],
                           slot.sent_ns[c], slot.recv_ns[c]});
      }
    }
  }
  obs::Span pull("coord", "trace_pull");
  int64_t imported = 0;
  for (const PullTarget& t : targets) {
    Result<std::vector<std::string>> rows =
        t.backend->PullTraceRows(tracer->trace_id());
    if (!rows.ok()) continue;  // unreachable / not retained: trace less
                               // complete, answer unaffected
    Result<obs::SpanPayload> payload =
        obs::SpanPayloadFromRows(rows.ValueOrDie());
    if (!payload.ok()) continue;
    const obs::SpanPayload& p = payload.ValueOrDie();

    // Clock offset: shard and coordinator clocks share no epoch, so
    // align the shard's root request span onto the coordinator's
    // send→receive window. A closed root maps midpoint to midpoint and
    // the window surplus is the measured skew (wire + queue time); an
    // open root (cancelled straggler) aligns its start to the send.
    int64_t offset_ns = 0;
    int64_t skew_ns = 0;
    const obs::SpanRecord* root = nullptr;
    for (const obs::SpanRecord& s : p.spans) {
      if (s.parent == 0 && !s.instant) {
        root = &s;
        break;
      }
    }
    if (root != nullptr && t.sent != 0) {
      if (root->end_ns != 0 && t.recv != 0) {
        offset_ns = static_cast<int64_t>((t.sent + t.recv) / 2) -
                    static_cast<int64_t>((root->start_ns + root->end_ns) / 2);
        skew_ns = static_cast<int64_t>(t.recv - t.sent) -
                  static_cast<int64_t>(root->end_ns - root->start_ns);
      } else {
        offset_ns = static_cast<int64_t>(t.sent) -
                    static_cast<int64_t>(root->start_ns);
      }
    }
    imported += static_cast<int64_t>(tracer->ImportSpans(
        p.spans, t.attach, offset_ns, t.backend->name(),
        {{"shard", t.backend->name()},
         {"clock_offset_ns", std::to_string(offset_ns)},
         {"skew_ns", std::to_string(skew_ns)}}));
  }
  if (pull.active()) pull.Add("spans_imported", imported);
}

Result<std::vector<std::string>> ShardCoordinator::PullTraceRows(
    uint64_t trace_id) const {
  std::shared_ptr<const obs::Tracer> found;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    for (auto it = trace_log_.rbegin(); it != trace_log_.rend(); ++it) {
      if ((*it)->trace_id() == trace_id) {
        found = *it;
        break;
      }
    }
    if (found == nullptr) {
      for (auto it = pinned_traces_.rbegin(); it != pinned_traces_.rend();
           ++it) {
        if ((*it)->trace_id() == trace_id) {
          found = *it;
          break;
        }
      }
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no retained trace with id " +
                            std::to_string(trace_id));
  }
  obs::SpanPayload payload;
  payload.trace_id = trace_id;
  payload.parent_span = 0;
  payload.now_ns = obs::NowNs();
  payload.dropped = found->dropped();
  payload.spans = found->Snapshot();
  return obs::SpanPayloadToRows(payload);
}

Result<uint64_t> ShardCoordinator::Write(const std::string& collection,
                                         const ingest::WriteOp& op) {
  metrics_.writes_total.fetch_add(1, std::memory_order_relaxed);
  auto fail = [&](Status st) -> Result<uint64_t> {
    metrics_.writes_failed.fetch_add(1, std::memory_order_relaxed);
    return st;
  };
  if (shards_.empty()) {
    return fail(Status::InvalidArgument("no shards configured"));
  }
  // Stable-hash routing: the same (docID, N) → shard mapping the offline
  // partitioner uses, so streamed writes land exactly where a cold
  // re-partition would place the documents.
  const uint32_t idx = Partitioner::Assign(
      op.doc_id, static_cast<uint32_t>(shards_.size()));
  Shard& shard = *shards_[idx];
  Result<uint64_t> epoch = shard.primary->Write(collection, op);
  if (!epoch.ok()) return fail(epoch.status());
  if (shard.replica != nullptr) {
    // The replica holds the same partition and must see the same writes,
    // or a later hedge would serve a diverged answer. A replica failure
    // therefore fails the write loudly (the primary already applied it —
    // surfaced in the message so operators re-sync before re-enabling
    // hedges).
    Result<uint64_t> r = shard.replica->Write(collection, op);
    if (!r.ok()) {
      return fail(Status::Unavailable(
          "replica of shard " + shard.primary->name() +
          " rejected the write (primary applied it; replica now stale): " +
          r.status().message()));
    }
  }
  return epoch;
}

Result<int64_t> ShardCoordinator::Flush(const std::string& collection) {
  if (shards_.empty()) {
    return Status::InvalidArgument("no shards configured");
  }
  metrics_.flushes.fetch_add(1, std::memory_order_relaxed);
  // Quiesce every copy of every partition first...
  int64_t total_docs = 0;
  for (const std::unique_ptr<Shard>& s : shards_) {
    SPINDLE_ASSIGN_OR_RETURN(int64_t docs,
                             s->primary->Flush(collection));
    total_docs += docs;
    if (s->replica != nullptr) {
      SPINDLE_RETURN_IF_ERROR(s->replica->Flush(collection).status());
    }
  }
  // ...then refresh the full-collection statistics from the rebuilt
  // partition indexes. Partitions are disjoint, so the merge is an exact
  // integer sum — queries after this point score bit-identically to a
  // cold build over the merged logical collection.
  GlobalStats::Merger merger;
  for (const std::unique_ptr<Shard>& s : shards_) {
    SPINDLE_ASSIGN_OR_RETURN(GlobalStatsPtr local,
                             s->primary->FetchLocalStats(collection));
    SPINDLE_RETURN_IF_ERROR(merger.Add(*local));
  }
  SPINDLE_ASSIGN_OR_RETURN(GlobalStatsPtr merged, merger.Finish());
  SPINDLE_RETURN_IF_ERROR(SetGlobalStats(collection, std::move(merged)));
  return total_docs;
}

std::string ShardCoordinator::MetricsJson() const {
  auto v = [](const std::atomic<uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  std::string json = "{";
  json += "\"shards\":" + std::to_string(shards_.size());
  json += ",\"requests_total\":" + v(metrics_.requests_total);
  json += ",\"requests_ok\":" + v(metrics_.requests_ok);
  json += ",\"requests_partial\":" + v(metrics_.requests_partial);
  json += ",\"requests_failed\":" + v(metrics_.requests_failed);
  json += ",\"shard_failures\":" + v(metrics_.shard_failures);
  json += ",\"hedges_issued\":" + v(metrics_.hedges_issued);
  json += ",\"hedge_wins\":" + v(metrics_.hedge_wins);
  json += ",\"writes_total\":" + v(metrics_.writes_total);
  json += ",\"writes_failed\":" + v(metrics_.writes_failed);
  json += ",\"flushes\":" + v(metrics_.flushes);
  json += "}";
  return json;
}

void CoordinatorMetrics::Register(obs::MetricsRegistry* registry) const {
  auto* r = registry;
  const std::string none;
  r->AddCounter("spindle_coord_requests_total",
                "Distributed searches by outcome.", R"(outcome="ok")",
                &requests_ok);
  r->AddCounter("spindle_coord_requests_total", "", R"(outcome="partial")",
                &requests_partial);
  r->AddCounter("spindle_coord_requests_total", "", R"(outcome="failed")",
                &requests_failed);
  r->AddCounter("spindle_coord_shard_failures_total",
                "Shard dispatches that failed or missed the deadline.",
                none, &shard_failures);
  r->AddCounter("spindle_coord_hedges_issued_total",
                "Hedge dispatches issued to replicas.", none,
                &hedges_issued);
  r->AddCounter("spindle_coord_hedge_wins_total",
                "Requests answered by the hedge copy.", none, &hedge_wins);
  r->AddCounter("spindle_coord_writes_total", "Routed live writes.", none,
                &writes_total);
  r->AddCounter("spindle_coord_writes_failed_total",
                "Live writes that failed on the owning shard or its "
                "replica.",
                none, &writes_failed);
  r->AddCounter("spindle_coord_flushes_total",
                "Fleet-wide flush + statistics refreshes.", none, &flushes);
  r->AddHistogram("spindle_coord_request_latency_us",
                  "End-to-end distributed search latency (microseconds).",
                  none, &latency_us);
}

void ShardCoordinator::EnsureRegistered() {
  // Deferred past setup (AddShard) so the per-shard pool gauges exist;
  // the coordinator is setup-then-serve, so the shard set is final by
  // the first scrape.
  std::call_once(registry_once_, [this] {
    metrics_.Register(&registry_);
    registry_.AddGaugeFn("spindle_coord_shards", "Configured shards.", "",
                         [this] {
                           return static_cast<double>(shards_.size());
                         });
    registry_.AddGaugeFn("spindle_coord_inflight_dispatches",
                         "Shard dispatch threads in flight.", "", [this] {
                           std::lock_guard<std::mutex> lock(drain_mu_);
                           return static_cast<double>(inflight_);
                         });
    for (const std::unique_ptr<Shard>& s : shards_) {
      for (ShardBackendPtr backend : {s->primary, s->replica}) {
        if (backend == nullptr) continue;
        server::LineClientPool::Stats probe;
        if (!backend->ConnectionPoolStats(&probe)) continue;
        const std::string labels =
            "shard=\"" + backend->name() + "\"";
        auto fn = [backend](auto pick) {
          server::LineClientPool::Stats st;
          backend->ConnectionPoolStats(&st);
          return pick(st);
        };
        registry_.AddCounterFn(
            "spindle_coord_pool_dials_total",
            "Backend connections established.", labels, [fn] {
              return fn([](const server::LineClientPool::Stats& st) {
                return static_cast<double>(st.dials);
              });
            });
        registry_.AddCounterFn(
            "spindle_coord_pool_reuses_total",
            "Backend checkouts served from the idle pool.", labels, [fn] {
              return fn([](const server::LineClientPool::Stats& st) {
                return static_cast<double>(st.reuses);
              });
            });
        registry_.AddGaugeFn(
            "spindle_coord_pool_idle", "Idle pooled backend connections.",
            labels, [fn] {
              return fn([](const server::LineClientPool::Stats& st) {
                return static_cast<double>(st.idle);
              });
            });
        registry_.AddGaugeFn(
            "spindle_coord_pool_outstanding",
            "Backend connections checked out right now.", labels, [fn] {
              return fn([](const server::LineClientPool::Stats& st) {
                return static_cast<double>(st.outstanding);
              });
            });
      }
    }
  });
}

std::string ShardCoordinator::MetricsPrometheus() {
  EnsureRegistered();
  std::string out = registry_.PrometheusText();
  // Fleet view: scrape every reachable backend and append the exact
  // aggregation (summed counters, bucket-wise-merged histograms) plus
  // the per-shard re-export. Unreachable backends are skipped — the
  // fleet series then cover the reachable subset.
  std::vector<std::pair<std::string, std::vector<obs::PrometheusFamily>>>
      scrapes;
  for (const std::unique_ptr<Shard>& s : shards_) {
    for (const ShardBackendPtr& backend : {s->primary, s->replica}) {
      if (backend == nullptr) continue;
      Result<std::string> text = backend->FetchMetricsText();
      if (!text.ok()) continue;
      Result<std::vector<obs::PrometheusFamily>> parsed =
          obs::ParsePrometheusText(text.ValueOrDie());
      if (!parsed.ok()) continue;
      scrapes.emplace_back(backend->name(), parsed.MoveValueOrDie());
    }
  }
  if (!scrapes.empty()) out += obs::AggregateScrapes(scrapes);
  return out;
}

std::string ShardCoordinator::HealthRow() const {
  // Cheap by design: no shard probes, no admission — HEALTH must answer
  // even when the fleet is struggling.
  size_t inflight;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    inflight = inflight_;
  }
  std::string row = "ready=";
  row += shards_.empty() ? '0' : '1';
  row += " shards=" + std::to_string(shards_.size());
  row += " inflight=" + std::to_string(inflight);
  row += " requests_total=" +
         std::to_string(
             metrics_.requests_total.load(std::memory_order_relaxed));
  return row;
}

std::string ShardCoordinator::ExportChromeTraceJson() const {
  std::vector<std::shared_ptr<const obs::Tracer>> tracers;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    tracers.assign(trace_log_.begin(), trace_log_.end());
  }
  return obs::ExportChromeTrace(tracers);
}

// ---------------------------------------------------------------------------
// Wire front-end

std::string CoordinatorHandler::Handle(const std::string& cmd,
                                       std::string rest) {
  using server::WireErrLine;
  using server::WireOkBlock;
  using server::WireParseInt64;
  using server::WireSplitLines;
  using server::WireTakeWord;

  if (cmd == "STATS") {
    return WireOkBlock({coordinator_->MetricsJson()});
  }
  if (cmd == "METRICS") {
    return WireOkBlock(WireSplitLines(coordinator_->MetricsPrometheus()));
  }
  if (cmd == "HEALTH") return WireOkBlock({coordinator_->HealthRow()});
  if (cmd == "SLOWLOG") return WireOkBlock(coordinator_->SlowLogRows());
  if (cmd == "TRACEPULL") {
    const std::string word = WireTakeWord(&rest);
    errno = 0;
    char* end = nullptr;
    unsigned long long id = std::strtoull(word.c_str(), &end, 16);
    if (word.empty() || !rest.empty() || errno != 0 ||
        end != word.c_str() + word.size() || id == 0) {
      return WireErrLine(
          Status::InvalidArgument("usage: TRACEPULL <trace id (hex)>"));
    }
    Result<std::vector<std::string>> rows = coordinator_->PullTraceRows(id);
    if (!rows.ok()) return WireErrLine(rows.status());
    return WireOkBlock(rows.ValueOrDie());
  }

  // A leading tid= token on a coordinator request forces the request
  // traced (the coordinator mints the distributed trace id itself — the
  // caller's ids are not propagated upward).
  bool traced = false;
  if (rest.compare(0, 4, "tid=") == 0) {
    const std::string token = WireTakeWord(&rest);
    uint64_t foreign_trace = 0, foreign_span = 0;
    if (!ParseTraceToken(token, &foreign_trace, &foreign_span)) {
      return WireErrLine(
          Status::InvalidArgument("malformed trace token: " + token));
    }
    traced = true;
  }

  if (cmd == "SEARCH") {
    CoordSearchRequest req;
    req.trace = traced;
    req.collection = WireTakeWord(&rest);
    int64_t k = 0;
    if (req.collection.empty() || !WireParseInt64(WireTakeWord(&rest), &k) ||
        !WireParseInt64(WireTakeWord(&rest), &req.deadline_ms) ||
        rest.empty()) {
      return WireErrLine(Status::InvalidArgument(
          "usage: SEARCH <collection> <k> <deadline_ms> <query...>"));
    }
    if (k <= 0) {
      return WireErrLine(
          Status::InvalidArgument("k must be > 0 on a coordinator"));
    }
    req.query = rest;
    req.options.top_k = static_cast<size_t>(k);
    Result<CoordSearchResponse> resp = coordinator_->Search(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    const CoordSearchResponse& cr = resp.ValueOrDie();
    return WireOkBlock(server::SerializeRows(*cr.rows), cr.trace_id,
                       cr.partial);
  }

  if (cmd == "GSTATS") {
    const std::string collection = WireTakeWord(&rest);
    if (collection.empty() || !rest.empty()) {
      return WireErrLine(
          Status::InvalidArgument("usage: GSTATS <collection>"));
    }
    GlobalStatsPtr stats = coordinator_->GetGlobalStats(collection);
    if (stats == nullptr) {
      return WireErrLine(Status::NotFound(
          "no global statistics for collection: " + collection));
    }
    return WireOkBlock(stats->ToWireRows());
  }

  if (cmd == "ADD" || cmd == "UPDATE" || cmd == "DELETE") {
    // Same write grammar a shard server accepts; the coordinator routes
    // the op to the owning shard (and its replica) by docID hash.
    Result<ingest::ParsedWrite> parsed =
        ingest::ParseWriteCommand(cmd + " " + rest);
    if (!parsed.ok()) return WireErrLine(parsed.status());
    Result<uint64_t> epoch = coordinator_->Write(
        parsed.ValueOrDie().collection, parsed.ValueOrDie().op);
    if (!epoch.ok()) return WireErrLine(epoch.status());
    return WireOkBlock({"epoch=" + std::to_string(epoch.ValueOrDie())});
  }

  if (cmd == "FLUSH") {
    const std::string collection = WireTakeWord(&rest);
    if (collection.empty() || !rest.empty()) {
      return WireErrLine(
          Status::InvalidArgument("usage: FLUSH <collection>"));
    }
    Result<int64_t> docs = coordinator_->Flush(collection);
    if (!docs.ok()) return WireErrLine(docs.status());
    // The epoch token keeps the response shape of a shard server; write
    // epochs are per-shard, so the fleet-wide token is always 0.
    return WireOkBlock(
        {"epoch=0 docs=" + std::to_string(docs.ValueOrDie())});
  }

  if (cmd == "SPINQL" || cmd == "TRACE") {
    return WireErrLine(Status::NotImplemented(
        cmd + " is not distributed; connect to a shard directly"));
  }

  return WireErrLine(Status::InvalidArgument("unknown command: " + cmd));
}

}  // namespace shard
}  // namespace spindle
