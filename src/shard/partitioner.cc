#include "shard/partitioner.h"

#include <optional>
#include <utility>

#include "ir/index_snapshot.h"
#include "ir/indexing.h"

namespace spindle {
namespace shard {

namespace {

/// The docID column of a collection-shaped relation: the int64 field
/// named "docID", else the first int64 column — the same resolution
/// TextIndex::Build applies. Returns nullopt when the relation has no
/// int64 column or no string column (not a document collection).
std::optional<size_t> CollectionDocIdColumn(const Relation& rel) {
  bool has_text = false;
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    if (rel.column(c).type() == DataType::kString) has_text = true;
  }
  if (!has_text) return std::nullopt;
  if (auto named = rel.schema().FindField("docID");
      named.has_value() &&
      rel.schema().field(*named).type == DataType::kInt64) {
    return named;
  }
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    if (rel.column(c).type() == DataType::kInt64) return c;
  }
  return std::nullopt;
}

/// Gathers `rows` of `col` into a fresh column of the same type.
/// Dict-encoded columns gather codes and keep sharing the dictionary.
Column GatherColumn(const Column& col, const std::vector<size_t>& rows) {
  switch (col.type()) {
    case DataType::kInt64: {
      std::vector<int64_t> out;
      out.reserve(rows.size());
      for (size_t r : rows) out.push_back(col.Int64At(r));
      return Column::MakeInt64(std::move(out));
    }
    case DataType::kFloat64: {
      std::vector<double> out;
      out.reserve(rows.size());
      for (size_t r : rows) out.push_back(col.Float64At(r));
      return Column::MakeFloat64(std::move(out));
    }
    case DataType::kString: {
      if (col.dict_encoded()) {
        std::vector<int32_t> codes;
        codes.reserve(rows.size());
        for (size_t r : rows) codes.push_back(col.CodeAt(r));
        return Column::MakeDictString(std::move(codes), col.dict());
      }
      std::vector<std::string> out;
      out.reserve(rows.size());
      for (size_t r : rows) out.push_back(col.StringAt(r));
      return Column::MakeString(std::move(out));
    }
  }
  return Column(col.type());
}

}  // namespace

Result<RelationPtr> PartitionCollection(const RelationPtr& docs,
                                        uint32_t shard,
                                        uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (shard >= num_shards) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range for " +
        std::to_string(num_shards) + " shards");
  }
  std::optional<size_t> id_col = CollectionDocIdColumn(*docs);
  if (!id_col.has_value()) {
    return Status::InvalidArgument(
        "relation is not collection-shaped (needs an int64 docID column "
        "and a string column): " +
        docs->schema().ToString());
  }
  const Column& ids = docs->column(*id_col);
  std::vector<size_t> keep;
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    if (Partitioner::Assign(ids.Int64At(r), num_shards) == shard) {
      keep.push_back(r);
    }
  }
  std::vector<Column> cols;
  cols.reserve(docs->num_columns());
  for (size_t c = 0; c < docs->num_columns(); ++c) {
    cols.push_back(GatherColumn(docs->column(c), keep));
  }
  return Relation::Make(docs->schema(), std::move(cols));
}

Result<std::vector<std::shared_ptr<Catalog>>> PartitionCatalog(
    const Catalog& full, uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<std::shared_ptr<Catalog>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_shared<Catalog>());
  }
  for (const std::string& name : full.List()) {
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel, full.Get(name));
    if (CollectionDocIdColumn(*rel).has_value()) {
      for (uint32_t i = 0; i < num_shards; ++i) {
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr part,
                                 PartitionCollection(rel, i, num_shards));
        shards[i]->Register(name, std::move(part));
      }
    } else {
      // Not a document collection: replicate (shared columns, no copy).
      for (uint32_t i = 0; i < num_shards; ++i) {
        shards[i]->Register(name, rel);
      }
    }
  }
  return shards;
}

Result<std::vector<ShardSnapshotInfo>> WriteShardSnapshots(
    const Catalog& full, const AnalyzerOptions& analyzer,
    uint32_t num_shards, const std::string& path_prefix) {
  SPINDLE_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<Catalog>> catalogs,
                           PartitionCatalog(full, num_shards));
  SPINDLE_ASSIGN_OR_RETURN(Analyzer a, Analyzer::Make(analyzer));

  // Build every shard's indexes first: they go into the shard snapshots
  // AND feed the statistics merger — disjoint partitions make the merged
  // statistics exactly the full collection's, with no full-size index
  // build anywhere.
  std::vector<std::vector<SnapshotIndexEntry>> entries(num_shards);
  std::map<std::string, GlobalStats::Merger> mergers;
  std::vector<ShardSnapshotInfo> infos(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    for (const std::string& name : catalogs[i]->List()) {
      SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel, catalogs[i]->Get(name));
      if (!CollectionDocIdColumn(*rel).has_value()) continue;
      SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                               TextIndex::Build(rel, a));
      SPINDLE_RETURN_IF_ERROR(mergers[name].Add(*index));
      entries[i].push_back({name, std::move(index)});
      if (infos[i].num_docs == 0) {
        infos[i].num_docs = static_cast<int64_t>(rel->num_rows());
      }
    }
  }
  GlobalStatsMap stats;
  for (auto& [name, merger] : mergers) {
    SPINDLE_ASSIGN_OR_RETURN(GlobalStatsPtr s, merger.Finish());
    stats.emplace(name, std::move(s));
  }
  const std::string blob = SerializeGlobalStatsMap(stats);
  for (uint32_t i = 0; i < num_shards; ++i) {
    infos[i].path = path_prefix + ".shard" + std::to_string(i) + ".snap";
    SPINDLE_RETURN_IF_ERROR(
        SaveSnapshotFile(infos[i].path, *catalogs[i], entries[i],
                         {{kGlobalStatsSection, blob}}));
  }
  return infos;
}

}  // namespace shard
}  // namespace spindle
