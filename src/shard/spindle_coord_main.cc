/// \file spindle_coord_main.cc
/// \brief The spindle_coord binary: a scatter-gather coordinator fronting
/// N spindle_serve shard backends over the same line protocol, so
/// spindle_client works unchanged (docs/sharding.md has a quickstart).
///
///   spindle_coord --shards=127.0.0.1:7701,127.0.0.1:7702 --port=7654
///
/// Flags:
///   --shards=H:P,H:P,...   required: one host:port per shard, in shard
///                          order (shard i must serve partition i)
///   --replicas=H:P,,H:P    optional: per-shard replica backends for
///                          hedging / failover; empty slots allowed
///   --collection=NAME      collection to bootstrap statistics for
///                          (default "docs")
///   --port=N               listen port (0 = ephemeral; default 7654)
///   --host=ADDR            listen address (default 127.0.0.1)
///   --port-file=PATH       write the bound port to PATH
///   --default-deadline-ms=N  deadline for requests that send 0
///   --partial=fail|degrade  failed-shard policy (default fail):
///                          fail    → any failed shard fails the query
///                          degrade → merge the rest, flag partial=1
///   --hedge-after-ms=N     re-issue to the replica after N ms silence
///   --hedge-percentile=P   adaptive hedge delay at latency percentile
///                          P in (0,1], e.g. 0.95 (needs warm-up)
///   --connect-timeout-ms=N per-dispatch connect timeout (default 1000)
///   --read-timeout-ms=N    response wait for deadline-less requests
///                          (default 10000)
///   --bootstrap-timeout-ms=N  how long to wait for all shards to come
///                          up before fetching statistics (default 10000)
///   --trace=0|1            trace every request (scatter / per-shard
///                          wait / merge spans)
///   --trace-file=PATH      at shutdown, write retained request traces
///                          as Chrome trace-event JSON to PATH
///   --slow-query-ms=N      slow-query log: capture requests slower than
///                          N ms (SLOWLOG wire command; SIGUSR1 dumps the
///                          log to stderr)
///   --slow-sample=N        additionally capture every N-th request
///                          regardless of latency (0 = off)
///
/// Startup: pings every shard until --bootstrap-timeout-ms expires, then
/// fetches the collection's global statistics via GSTATS (first healthy
/// shard wins; all reachable shards are cross-checked for byte-identical
/// statistics — a mismatch aborts startup, because a topology that mixes
/// partitionings would serve wrong rankings).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/line_server.h"
#include "shard/coordinator.h"

namespace {

std::sig_atomic_t g_signal_stop = 0;
std::sig_atomic_t g_dump_slowlog = 0;

void HandleSignal(int) { g_signal_stop = 1; }

void HandleSigusr1(int) { g_dump_slowlog = 1; }

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// Splits "a,b,,c" into {"a", "b", "", "c"} (empty slots preserved, so
/// --replicas can cover only some shards).
std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseHostPort(const std::string& s, std::string* host, int* port) {
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= s.size()) {
    return false;
  }
  *host = s.substr(0, colon);
  *port = std::atoi(s.c_str() + colon + 1);
  return *port > 0 && *port < 65536;
}

}  // namespace

int main(int argc, char** argv) {
  using spindle::server::LineServer;
  using spindle::server::LineServerOptions;
  using spindle::shard::CoordinatorHandler;
  using spindle::shard::CoordinatorOptions;
  using spindle::shard::PartialPolicy;
  using spindle::shard::RemoteShardBackend;
  using spindle::shard::ShardBackendPtr;
  using spindle::shard::ShardCoordinator;

  LineServerOptions server_opts;
  server_opts.port = 7654;
  CoordinatorOptions coord_opts;
  RemoteShardBackend::Options backend_opts;
  std::string shards_flag;
  std::string replicas_flag;
  std::string collection = "docs";
  std::string port_file;
  std::string trace_file;
  int64_t bootstrap_timeout_ms = 10000;

  const char* trace_env = std::getenv("SPINDLE_TRACE");
  if (trace_env != nullptr && std::strcmp(trace_env, "1") == 0) {
    coord_opts.trace_requests = true;
  }

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--port", &v)) {
      server_opts.port = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--host", &v)) {
      server_opts.host = v;
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (FlagValue(argv[i], "--shards", &v)) {
      shards_flag = v;
    } else if (FlagValue(argv[i], "--replicas", &v)) {
      replicas_flag = v;
    } else if (FlagValue(argv[i], "--collection", &v)) {
      collection = v;
    } else if (FlagValue(argv[i], "--default-deadline-ms", &v)) {
      coord_opts.default_deadline_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--partial", &v)) {
      if (v == "fail") {
        coord_opts.partial = PartialPolicy::kFail;
      } else if (v == "degrade") {
        coord_opts.partial = PartialPolicy::kDegrade;
      } else {
        std::fprintf(stderr, "--partial must be fail or degrade\n");
        return 2;
      }
    } else if (FlagValue(argv[i], "--hedge-after-ms", &v)) {
      coord_opts.hedge_after_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--hedge-percentile", &v)) {
      coord_opts.hedge_percentile = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--connect-timeout-ms", &v)) {
      backend_opts.connect_timeout_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--read-timeout-ms", &v)) {
      backend_opts.default_read_timeout_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--bootstrap-timeout-ms", &v)) {
      bootstrap_timeout_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--trace", &v)) {
      coord_opts.trace_requests = std::atoi(v.c_str()) != 0;
    } else if (FlagValue(argv[i], "--trace-file", &v)) {
      trace_file = v;
      coord_opts.trace_requests = true;
    } else if (FlagValue(argv[i], "--slow-query-ms", &v)) {
      coord_opts.slow_query_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--slow-sample", &v)) {
      coord_opts.slow_sample =
          static_cast<uint64_t>(std::atoll(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (shards_flag.empty()) {
    std::fprintf(stderr,
                 "--shards=host:port,host:port,... is required\n");
    return 2;
  }
  std::vector<std::string> shard_specs = SplitCsv(shards_flag);
  std::vector<std::string> replica_specs =
      replicas_flag.empty() ? std::vector<std::string>()
                            : SplitCsv(replicas_flag);
  if (!replica_specs.empty() &&
      replica_specs.size() != shard_specs.size()) {
    std::fprintf(stderr,
                 "--replicas must list one (possibly empty) slot per "
                 "shard: got %zu slots for %zu shards\n",
                 replica_specs.size(), shard_specs.size());
    return 2;
  }

  ShardCoordinator coordinator(coord_opts);
  std::vector<ShardBackendPtr> primaries;
  for (size_t i = 0; i < shard_specs.size(); ++i) {
    std::string host;
    int port = 0;
    if (!ParseHostPort(shard_specs[i], &host, &port)) {
      std::fprintf(stderr, "bad shard spec: %s\n",
                   shard_specs[i].c_str());
      return 2;
    }
    auto primary = std::make_shared<RemoteShardBackend>(
        "shard" + std::to_string(i), host, port, backend_opts);
    ShardBackendPtr replica;
    if (i < replica_specs.size() && !replica_specs[i].empty()) {
      std::string rhost;
      int rport = 0;
      if (!ParseHostPort(replica_specs[i], &rhost, &rport)) {
        std::fprintf(stderr, "bad replica spec: %s\n",
                     replica_specs[i].c_str());
        return 2;
      }
      replica = std::make_shared<RemoteShardBackend>(
          "shard" + std::to_string(i) + "r", rhost, rport, backend_opts);
    }
    primaries.push_back(primary);
    coordinator.AddShard(std::move(primary), std::move(replica));
  }

  // Wait for the shard fleet to come up (they are usually launched in the
  // same script), then bootstrap the collection's global statistics.
  const auto bootstrap_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bootstrap_timeout_ms);
  for (const ShardBackendPtr& shard : primaries) {
    for (;;) {
      spindle::Status st = shard->Ping();
      if (st.ok()) break;
      if (std::chrono::steady_clock::now() >= bootstrap_deadline) {
        std::fprintf(stderr, "shard %s did not come up: %s\n",
                     shard->name().c_str(), st.ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  spindle::Status st = coordinator.BootstrapGlobalStats(collection);
  if (!st.ok()) {
    std::fprintf(stderr, "statistics bootstrap failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bootstrapped global statistics for '%s' from %zu "
               "shard(s)\n",
               collection.c_str(), shard_specs.size());

  CoordinatorHandler handler(&coordinator);
  LineServer server(&handler, server_opts);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "LISTENING %s:%d\n", server_opts.host.c_str(),
               server.port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleSigusr1);
  while (g_signal_stop == 0 && !server.stopping()) {
    if (g_dump_slowlog != 0) {
      g_dump_slowlog = 0;
      std::fprintf(stderr, "--- slow-query log ---\n");
      for (const std::string& row : coordinator.SlowLogRows()) {
        std::fprintf(stderr, "%s\n", row.c_str());
      }
      std::fprintf(stderr, "--- end slow-query log ---\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  if (!trace_file.empty()) {
    std::FILE* f = std::fopen(trace_file.c_str(), "w");
    if (f != nullptr) {
      std::string json = coordinator.ExportChromeTraceJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote trace to %s\n", trace_file.c_str());
    } else {
      std::fprintf(stderr, "could not open trace file %s\n",
                   trace_file.c_str());
    }
  }
  std::fprintf(stderr, "shutdown complete\n%s\n",
               coordinator.MetricsJson().c_str());
  return 0;
}
