/// \file coordinator.h
/// \brief Scatter-gather query coordination over partitioned collections.
///
/// The coordinator owns the distributed query lifecycle (docs/sharding.md):
///
///   1. resolve — analyze the query once and attach full-collection
///      statistics (GlobalStats::ResolveQuery), so every shard scores
///      its partition under *global* idf / cf / avgdl;
///   2. scatter — dispatch the resolved query to every shard with the
///      request's *remaining budget* as a relative deadline (never a
///      wall-clock deadline: shard clocks are unrelated);
///   3. gather — wait for the shards' local top-k lists, hedging a
///      straggler to its replica after a configurable delay or an
///      observed latency percentile, and cooperatively cancelling
///      whichever copy loses the race;
///   4. merge — concatenate the per-shard (docID, score) lists and keep
///      the global top-k under (score desc, docID asc).
///
/// Because the partitions are disjoint and each shard returns its full
/// local top-k scored with global statistics, every member of the true
/// global top-k is necessarily in some shard's list — the merge is exact,
/// and the final relation is bit-identical to single-node RankTopK over
/// the whole collection (scores, docIDs and order; verified by
/// tests/shard_test.cc and the CI byte-diff smoke).
///
/// Failures: a shard that fails or misses the deadline either fails the
/// whole query (PartialPolicy::kFail → kUnavailable) or degrades it
/// (kDegrade → merged answer over the responsive shards, flagged
/// partial). A degraded answer is no longer guaranteed complete — that
/// is the documented trade; the flag travels to clients as the
/// "partial=1" response-header token.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/request_context.h"
#include "ir/searcher.h"
#include "obs/metrics_registry.h"
#include "obs/span_wire.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/line_server.h"
#include "server/query_service.h"
#include "server/slowlog.h"
#include "shard/global_stats.h"
#include "text/analyzer.h"

namespace spindle {
namespace shard {

/// \brief One shard the coordinator can dispatch to. Implementations
/// must be thread-safe: the coordinator calls SearchSharded from
/// concurrent dispatch threads (primary and hedge may run at once).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  virtual const std::string& name() const = 0;

  /// \brief Executes the resolved query against this shard's partition.
  /// `deadline_ms` is the remaining budget at dispatch (0 = none);
  /// `token` is tripped when the coordinator no longer needs the answer
  /// (deadline, hedge lost, shutdown) — implementations should stop work
  /// and may return any status once tripped.
  virtual Result<RelationPtr> SearchSharded(const std::string& collection,
                                            const QueryGlobalStats& global,
                                            const SearchOptions& options,
                                            int64_t deadline_ms,
                                            CancelTokenPtr token) = 0;

  /// \brief Cheap liveness probe.
  virtual Status Ping() = 0;

  /// \brief The shard's stored full-collection statistics (coordinator
  /// bootstrap; every shard of a partitioning stores the same bytes).
  virtual Result<GlobalStatsPtr> FetchGlobalStats(
      const std::string& collection) = 0;

  /// \brief Applies one live write to this shard's partition; returns
  /// the shard's new write epoch. Defaults to NotImplemented so
  /// search-only backends (and test fakes) need not care.
  virtual Result<uint64_t> Write(const std::string& collection,
                                 const ingest::WriteOp& op) {
    (void)collection;
    (void)op;
    return Status::NotImplemented("backend does not support live writes");
  }

  /// \brief Forces compaction + quiesce of this shard's partition;
  /// returns the compacted partition's document count.
  virtual Result<int64_t> Flush(const std::string& collection) {
    (void)collection;
    return Status::NotImplemented("backend does not support live writes");
  }

  /// \brief The statistics of this shard's *current* partition (GSTATSL)
  /// — merged across shards after FLUSH to refresh the coordinator's
  /// full-collection statistics.
  virtual Result<GlobalStatsPtr> FetchLocalStats(
      const std::string& collection) {
    (void)collection;
    return Status::NotImplemented(
        "backend does not support local statistics");
  }

  /// \brief The shard's Prometheus metrics text (the METRICS wire
  /// command) — the coordinator's fleet view scrapes every backend
  /// through this.
  virtual Result<std::string> FetchMetricsText() {
    return Status::NotImplemented("backend does not expose metrics");
  }

  /// \brief Span rows (see obs/span_wire.h) for a trace recently
  /// recorded on this shard — how the coordinator collects the shard
  /// side of a distributed trace (TRACEPULL).
  virtual Result<std::vector<std::string>> PullTraceRows(uint64_t trace_id) {
    (void)trace_id;
    return Status::NotImplemented("backend does not retain traces");
  }

  /// \brief Connection-pool occupancy, for backends that pool
  /// connections (remote). Returns false for in-process backends.
  virtual bool ConnectionPoolStats(server::LineClientPool::Stats* out) const {
    (void)out;
    return false;
  }
};

using ShardBackendPtr = std::shared_ptr<ShardBackend>;

/// \brief In-process backend over a QueryService (tests, benchmarks,
/// single-binary topologies). The service must hold this shard's
/// partition and outlive the backend.
class LocalShardBackend : public ShardBackend {
 public:
  LocalShardBackend(std::string name, server::QueryService* service)
      : name_(std::move(name)), service_(service) {}

  const std::string& name() const override { return name_; }
  Result<RelationPtr> SearchSharded(const std::string& collection,
                                    const QueryGlobalStats& global,
                                    const SearchOptions& options,
                                    int64_t deadline_ms,
                                    CancelTokenPtr token) override;
  Status Ping() override { return Status::OK(); }
  Result<GlobalStatsPtr> FetchGlobalStats(
      const std::string& collection) override;
  Result<uint64_t> Write(const std::string& collection,
                         const ingest::WriteOp& op) override;
  Result<int64_t> Flush(const std::string& collection) override;
  Result<GlobalStatsPtr> FetchLocalStats(
      const std::string& collection) override;
  Result<std::string> FetchMetricsText() override;
  Result<std::vector<std::string>> PullTraceRows(uint64_t trace_id) override;

 private:
  std::string name_;
  server::QueryService* service_;
};

/// \brief Remote backend over the line protocol (SEARCHG / GSTATS /
/// write wire commands). Connections come from a per-backend
/// LineClientPool: steady-state dispatches and write fan-out reuse warm
/// TCP connections instead of paying a handshake per call, and
/// concurrent primary and hedge dispatches still never share a socket
/// (each checks its own connection out). The per-call read timeout is
/// re-armed on the pooled connection from the request's remaining
/// budget. Cancellation is cooperative at the transport level: a tripped
/// token abandons the response (the connection is dropped, not reused);
/// the server side enforces its own (shipped) deadline.
class RemoteShardBackend : public ShardBackend {
 public:
  struct Options {
    int64_t connect_timeout_ms = 1000;
    int connect_retries = 2;
    int64_t backoff_ms = 50;
    /// Response-wait bound when the request itself has no deadline.
    int64_t default_read_timeout_ms = 10000;
    /// Idle pooled connections retained (see LineClientPool).
    size_t max_idle_connections = 8;
  };

  RemoteShardBackend(std::string name, std::string host, int port,
                     Options options)
      : name_(std::move(name)),
        host_(std::move(host)),
        port_(port),
        opts_(options),
        pool_(MakePoolOptions(options)) {}
  RemoteShardBackend(std::string name, std::string host, int port)
      : RemoteShardBackend(std::move(name), std::move(host), port,
                           Options()) {}

  const std::string& name() const override { return name_; }
  Result<RelationPtr> SearchSharded(const std::string& collection,
                                    const QueryGlobalStats& global,
                                    const SearchOptions& options,
                                    int64_t deadline_ms,
                                    CancelTokenPtr token) override;
  Status Ping() override;
  Result<GlobalStatsPtr> FetchGlobalStats(
      const std::string& collection) override;
  Result<uint64_t> Write(const std::string& collection,
                         const ingest::WriteOp& op) override;
  Result<int64_t> Flush(const std::string& collection) override;
  Result<GlobalStatsPtr> FetchLocalStats(
      const std::string& collection) override;
  Result<std::string> FetchMetricsText() override;
  Result<std::vector<std::string>> PullTraceRows(uint64_t trace_id) override;
  bool ConnectionPoolStats(server::LineClientPool::Stats* out) const override {
    *out = pool_.stats();
    return true;
  }

  /// \brief Connection-reuse accounting (dials vs. pool hits).
  server::LineClientPool::Stats pool_stats() const { return pool_.stats(); }

 private:
  static server::LineClientPool::Options MakePoolOptions(
      const Options& options) {
    server::LineClientPool::Options po;
    po.client.connect_timeout_ms = options.connect_timeout_ms;
    po.client.connect_retries = options.connect_retries;
    po.client.backoff_ms = options.backoff_ms;
    po.client.read_timeout_ms = options.default_read_timeout_ms;
    po.max_idle_per_target = options.max_idle_connections;
    return po;
  }

  /// Checks a pooled connection out with the read timeout re-armed.
  Result<server::LineClientPool::Lease> Checkout(int64_t read_timeout_ms);

  std::string name_;
  std::string host_;
  int port_;
  Options opts_;
  server::LineClientPool pool_;
};

/// \brief What a degraded (partial) answer is allowed to look like.
enum class PartialPolicy {
  /// Any failed or late shard fails the query with kUnavailable.
  kFail,
  /// Merge the responsive shards and flag the answer partial. If no
  /// shard responded there is nothing to degrade to — still kUnavailable.
  kDegrade,
};

struct CoordinatorOptions {
  /// Applied to requests that do not carry their own deadline; 0 = none.
  int64_t default_deadline_ms = 0;
  PartialPolicy partial = PartialPolicy::kFail;
  /// Fixed hedge delay: re-issue a shard's request to its replica after
  /// this many ms without a reply. 0 disables fixed-delay hedging.
  int64_t hedge_after_ms = 0;
  /// Adaptive hedge delay: when hedge_after_ms == 0 and this is in
  /// (0, 1], hedge after the shard's observed latency percentile (e.g.
  /// 0.95), once hedge_min_samples responses have been recorded.
  double hedge_percentile = 0.0;
  size_t hedge_min_samples = 32;
  /// Trace every request (scatter / per-shard wait / merge spans, shard
  /// spans pulled and merged onto the coordinator timeline,
  /// Chrome-exportable).
  bool trace_requests = false;
  size_t trace_log_capacity = 64;
  /// Slow-query log (docs/observability.md): capture requests slower
  /// than this (0 disables) ...
  int64_t slow_query_ms = 0;
  /// ... and/or every N-th request regardless of latency (0 disables).
  uint64_t slow_sample = 0;
  /// Slow-log ring capacity; also bounds pinned exemplar traces.
  size_t slow_log_capacity = 128;
};

struct CoordSearchRequest {
  std::string collection;
  std::string query;
  SearchOptions options;  ///< top_k > 0 required; no phrase boost
  /// Relative deadline; 0 uses the coordinator default, negative
  /// disables it.
  int64_t deadline_ms = 0;
  /// Trace this request even when the coordinator-wide trace_requests
  /// is off (set by a tid= token on the wire).
  bool trace = false;
};

struct CoordSearchResponse {
  RelationPtr rows;  ///< (docID: int64, score: float64), global top-k
  /// True when PartialPolicy::kDegrade dropped one or more shards.
  bool partial = false;
  std::vector<std::string> failed_shards;
  uint64_t latency_us = 0;
  size_t hedges = 0;  ///< hedge dispatches issued for this request
  uint64_t trace_id = 0;
  std::shared_ptr<const obs::Tracer> trace;
};

/// \brief Coordinator-side counters (monotonic; JSON via MetricsJson,
/// Prometheus families via Register).
struct CoordinatorMetrics {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_partial{0};
  std::atomic<uint64_t> requests_failed{0};
  std::atomic<uint64_t> shard_failures{0};
  std::atomic<uint64_t> hedges_issued{0};
  std::atomic<uint64_t> hedge_wins{0};
  std::atomic<uint64_t> writes_total{0};
  std::atomic<uint64_t> writes_failed{0};
  std::atomic<uint64_t> flushes{0};
  obs::LatencyHistogram latency_us;  ///< end-to-end Search latency

  /// \brief Self-registers every cell under spindle_coord_* family
  /// names. The metrics object must outlive the registry.
  void Register(obs::MetricsRegistry* registry) const;
};

/// \brief The scatter-gather coordinator. Thread-safe after setup:
/// configure shards and statistics first, then Search from any number of
/// threads. The destructor cancels and drains all in-flight dispatches.
class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorOptions options = {},
                            AnalyzerOptions analyzer = {});
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// \brief Adds one shard: the primary backend and an optional replica
  /// holding the SAME partition (hedge / failover target).
  void AddShard(ShardBackendPtr primary, ShardBackendPtr replica = nullptr);
  size_t num_shards() const { return shards_.size(); }

  /// \brief Installs the full-collection statistics for `collection`.
  /// Must be computed under this coordinator's analyzer configuration.
  Status SetGlobalStats(const std::string& collection, GlobalStatsPtr stats);

  /// \brief Fetches the statistics for `collection` from the shards
  /// (first healthy one wins) and cross-checks that every reachable
  /// shard stores identical bytes — a mismatch means the topology mixes
  /// partitionings and would serve wrong rankings.
  Status BootstrapGlobalStats(const std::string& collection);

  /// \brief The installed statistics for `collection`, or null.
  GlobalStatsPtr GetGlobalStats(const std::string& collection) const;

  /// \brief One distributed search: resolve, scatter, gather, merge.
  Result<CoordSearchResponse> Search(const CoordSearchRequest& req);

  /// \brief Routes one live write to the shard owning the docID
  /// (Partitioner::Assign — the same stable hash the offline partitioner
  /// uses, so a streamed write lands exactly where a cold re-partition
  /// would put the document) and applies it to the primary and its
  /// replica. Returns the primary's new write epoch. Note distributed
  /// rankings are exact again only after Flush(): per-shard deltas score
  /// under the last refreshed global statistics until then.
  Result<uint64_t> Write(const std::string& collection,
                         const ingest::WriteOp& op);

  /// \brief Flushes every shard (primaries and replicas), then refreshes
  /// the coordinator's full-collection statistics by merging the shards'
  /// GSTATSL answers — afterwards distributed results are bit-identical
  /// to a cold build over the merged logical collection. Returns the
  /// total document count across partitions.
  Result<int64_t> Flush(const std::string& collection);

  const CoordinatorMetrics& metrics() const { return metrics_; }
  std::string MetricsJson() const;
  /// \brief Chrome trace-event JSON of retained request traces.
  std::string ExportChromeTraceJson() const;

  /// \brief Prometheus text: the coordinator's own spindle_coord_*
  /// families, followed by the fleet view — every reachable backend is
  /// scraped (METRICS), counter and histogram families are summed into
  /// exact fleet series and every source series is re-exported with a
  /// shard="<name>" label (obs::AggregateScrapes). Unreachable backends
  /// are skipped; the fleet series then cover the reachable subset.
  std::string MetricsPrometheus();
  /// \brief One-row readiness probe (the HEALTH wire command).
  std::string HealthRow() const;
  /// \brief Span rows for a retained (or slow-log-pinned) request trace.
  Result<std::vector<std::string>> PullTraceRows(uint64_t trace_id) const;
  /// \brief Slow-query log rows, oldest first (the SLOWLOG command).
  std::vector<std::string> SlowLogRows() const {
    return slowlog_.RenderRows();
  }
  const server::SlowQueryLog& slowlog() const { return slowlog_; }

 private:
  struct Shard {
    ShardBackendPtr primary;
    ShardBackendPtr replica;
    /// Completed-dispatch latency ring for percentile hedging.
    std::mutex lat_mu;
    std::vector<uint64_t> lat_us;
    size_t lat_next = 0;
  };

  struct GatherState;

  /// Hedge delay for shard `s` in ms, or -1 when hedging is off /
  /// unwarmed.
  int64_t HedgeDelayMs(Shard& s) const;
  void RecordLatency(Shard& s, uint64_t us);

  /// Spawns one detached dispatch thread for slot `idx`.
  void Dispatch(const std::shared_ptr<GatherState>& state, size_t idx,
                const ShardBackendPtr& backend, bool is_hedge);

  /// Pulls every dispatched backend's spans for this trace and splices
  /// them onto the coordinator timeline (clock offset from the
  /// send/receive window; see docs/observability.md).
  void ImportShardTraces(obs::Tracer* tracer,
                         const std::shared_ptr<GatherState>& state);

  /// One-time registration of the coordinator's Prometheus families
  /// (deferred past AddShard so per-shard pool gauges exist).
  void EnsureRegistered();

  CoordinatorOptions opts_;
  AnalyzerOptions analyzer_options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  GlobalStatsMap stats_;
  CoordinatorMetrics metrics_;
  obs::MetricsRegistry registry_;
  std::once_flag registry_once_;
  server::SlowQueryLog slowlog_;

  /// Destructor drain: count of live dispatch threads.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t inflight_ = 0;
  std::atomic<bool> stopping_{false};

  mutable std::mutex trace_mu_;
  std::deque<std::shared_ptr<const obs::Tracer>> trace_log_;
  /// Slow-log exemplar traces: pinned past the rolling trace_log_ so a
  /// SLOWLOG trace_id stays pullable via TRACEPULL.
  std::deque<std::shared_ptr<const obs::Tracer>> pinned_traces_;
};

/// \brief LineHandler exposing a ShardCoordinator over the standard wire
/// protocol: SEARCH fans out (identical request line, identical response
/// framing — spindle_client cannot tell a coordinator from a single
/// server, except for the partial=1 token on degraded answers), GSTATS
/// serves the coordinator's statistics, STATS its metrics JSON, METRICS
/// its Prometheus families plus the aggregated fleet view, HEALTH /
/// SLOWLOG / TRACEPULL the observability surface (docs/serving.md).
/// SPINQL and TRACE are not distributed and return NotImplemented.
class CoordinatorHandler : public server::LineHandler {
 public:
  explicit CoordinatorHandler(ShardCoordinator* coordinator)
      : coordinator_(coordinator) {}
  std::string Handle(const std::string& cmd, std::string rest) override;

 private:
  ShardCoordinator* coordinator_;
};

}  // namespace shard
}  // namespace spindle
