#include "shard/global_stats.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <span>

#include "ir/topk_pruning.h"
#include "storage/snapshot.h"

namespace spindle {
namespace shard {

namespace {

constexpr uint32_t kGlobalStatsMagic = 0x47535431;  // "GST1"

/// Splits the leading space-delimited word off `*rest` (same contract as
/// the line server's tokenizer; duplicated here so the shard core does
/// not depend on the server library).
std::string TakeWord(std::string* rest) {
  size_t start = rest->find_first_not_of(' ');
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  size_t end = rest->find(' ', start);
  std::string word;
  if (end == std::string::npos) {
    word = rest->substr(start);
    rest->clear();
  } else {
    word = rest->substr(start, end - start);
    rest->erase(0, end + 1);
  }
  return word;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// avg_doc_len with the exact expression shape of TextIndex::Build, so a
/// merged/deserialized GlobalStats carries the identical double a full
/// index build would have produced.
double AvgDocLen(int64_t num_docs, int64_t total_postings) {
  return num_docs == 0 ? 0.0
                       : static_cast<double>(total_postings) /
                             static_cast<double>(num_docs);
}

}  // namespace

Status GlobalStats::Merger::Add(const TextIndex& index) {
  const std::string sig = index.analyzer_options().Signature();
  if (!any_) {
    analyzer_signature_ = sig;
    any_ = true;
  } else if (sig != analyzer_signature_) {
    return Status::InvalidArgument(
        "cannot merge statistics across analyzer configurations: " +
        analyzer_signature_ + " vs " + sig);
  }
  num_docs_ += index.stats().num_docs;
  total_postings_ += index.stats().total_postings;
  const Relation& dict = *index.termdict();
  const Column& tid_col = dict.column(0);
  const Column& term_col = dict.column(1);
  for (size_t r = 0; r < dict.num_rows(); ++r) {
    const int64_t tid = tid_col.Int64At(r);
    const auto& meta = index.impact().term_meta(tid);
    TermStats& t = terms_[term_col.StringAt(r)];
    t.df += meta.df;
    t.cf += meta.cf;
  }
  return Status::OK();
}

Status GlobalStats::Merger::Add(const GlobalStats& stats) {
  const std::string& sig = stats.analyzer_signature_;
  if (!any_) {
    analyzer_signature_ = sig;
    any_ = true;
  } else if (sig != analyzer_signature_) {
    return Status::InvalidArgument(
        "cannot merge statistics across analyzer configurations: " +
        analyzer_signature_ + " vs " + sig);
  }
  num_docs_ += stats.num_docs_;
  total_postings_ += stats.total_postings_;
  for (const auto& [term, ts] : stats.terms_) {
    TermStats& t = terms_[term];
    t.df += ts.df;
    t.cf += ts.cf;
  }
  return Status::OK();
}

Result<GlobalStatsPtr> GlobalStats::Merger::Finish() {
  if (!any_) {
    return Status::InvalidArgument(
        "GlobalStats::Merger::Finish with no partitions added");
  }
  auto stats = std::shared_ptr<GlobalStats>(new GlobalStats());
  stats->num_docs_ = num_docs_;
  stats->total_postings_ = total_postings_;
  stats->avg_doc_len_ = AvgDocLen(num_docs_, total_postings_);
  stats->analyzer_signature_ = std::move(analyzer_signature_);
  stats->terms_ = std::move(terms_);
  any_ = false;
  return GlobalStatsPtr(std::move(stats));
}

Result<GlobalStatsPtr> GlobalStats::FromIndex(const TextIndex& index) {
  Merger merger;
  SPINDLE_RETURN_IF_ERROR(merger.Add(index));
  return merger.Finish();
}

Result<GlobalStatsPtr> GlobalStats::Compute(const RelationPtr& docs,
                                            const AnalyzerOptions& analyzer) {
  SPINDLE_ASSIGN_OR_RETURN(Analyzer a, Analyzer::Make(analyzer));
  SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                           TextIndex::Build(docs, a));
  return FromIndex(*index);
}

const TermStats* GlobalStats::Find(const std::string& term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? nullptr : &it->second;
}

Result<QueryGlobalStats> GlobalStats::ResolveQuery(
    const std::string& query, const Analyzer& analyzer) const {
  if (analyzer.Signature() != analyzer_signature_) {
    return Status::InvalidArgument(
        "query analyzer " + analyzer.Signature() +
        " does not match the collection statistics' analyzer " +
        analyzer_signature_);
  }
  QueryGlobalStats out;
  out.num_docs = num_docs_;
  out.total_postings = total_postings_;
  out.avg_doc_len = avg_doc_len_;
  for (const Token& tok : analyzer.Analyze(query)) {
    auto it = terms_.find(tok.text);
    // A term that occurs nowhere in the collection is dropped — exactly
    // what the single-node qterms dictionary join does.
    if (it == terms_.end()) continue;
    out.terms.push_back({tok.text, it->second.df, it->second.cf});
  }
  return out;
}

std::vector<std::pair<std::string, TermStats>> GlobalStats::SortedTerms()
    const {
  std::vector<std::pair<std::string, TermStats>> sorted(terms_.begin(),
                                                        terms_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

std::string GlobalStats::Serialize() const {
  ByteWriter w;
  w.U32(kGlobalStatsMagic);
  w.I64(num_docs_);
  w.I64(total_postings_);
  w.Str(analyzer_signature_);
  auto sorted = SortedTerms();
  w.U64(sorted.size());
  for (const auto& [term, t] : sorted) {
    w.Str(term);
    w.I64(t.df);
    w.I64(t.cf);
  }
  return w.Take();
}

Result<GlobalStatsPtr> GlobalStats::Deserialize(std::string_view bytes) {
  ByteReader r(std::as_bytes(std::span<const char>(bytes.data(), bytes.size())));
  if (r.U32() != kGlobalStatsMagic) {
    return Status::ParseError("global stats blob: bad magic");
  }
  auto stats = std::shared_ptr<GlobalStats>(new GlobalStats());
  stats->num_docs_ = r.I64();
  stats->total_postings_ = r.I64();
  stats->analyzer_signature_ = r.Str();
  const uint64_t n = r.U64();
  stats->terms_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    std::string term = r.Str();
    TermStats t;
    t.df = r.I64();
    t.cf = r.I64();
    stats->terms_.emplace(std::move(term), t);
  }
  SPINDLE_RETURN_IF_ERROR(r.status());
  stats->avg_doc_len_ = AvgDocLen(stats->num_docs_, stats->total_postings_);
  return GlobalStatsPtr(std::move(stats));
}

std::vector<std::string> GlobalStats::ToWireRows() const {
  std::vector<std::string> rows;
  rows.reserve(terms_.size() + 1);
  rows.push_back(std::to_string(num_docs_) + " " +
                 std::to_string(total_postings_) + " " +
                 analyzer_signature_);
  for (const auto& [term, t] : SortedTerms()) {
    rows.push_back(std::to_string(t.df) + " " + std::to_string(t.cf) + " " +
                   term);
  }
  return rows;
}

Result<GlobalStatsPtr> GlobalStats::FromWireRows(
    const std::vector<std::string>& rows) {
  if (rows.empty()) {
    return Status::ParseError("GSTATS response: missing header row");
  }
  auto stats = std::shared_ptr<GlobalStats>(new GlobalStats());
  std::string rest = rows[0];
  if (!ParseInt64(TakeWord(&rest), &stats->num_docs_) ||
      !ParseInt64(TakeWord(&rest), &stats->total_postings_) ||
      rest.empty()) {
    return Status::ParseError("GSTATS response: bad header row: " + rows[0]);
  }
  stats->analyzer_signature_ = rest;
  stats->terms_.reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    rest = rows[i];
    TermStats t;
    if (!ParseInt64(TakeWord(&rest), &t.df) ||
        !ParseInt64(TakeWord(&rest), &t.cf) || rest.empty()) {
      return Status::ParseError("GSTATS response: bad term row: " + rows[i]);
    }
    stats->terms_.emplace(std::move(rest), t);
  }
  stats->avg_doc_len_ = AvgDocLen(stats->num_docs_, stats->total_postings_);
  return GlobalStatsPtr(std::move(stats));
}

std::string SerializeGlobalStatsMap(const GlobalStatsMap& map) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(map.size()));
  for (const auto& [name, stats] : map) {
    w.Str(name);
    w.Str(stats->Serialize());
  }
  return w.Take();
}

Result<GlobalStatsMap> DeserializeGlobalStatsMap(std::string_view bytes) {
  ByteReader r(std::as_bytes(std::span<const char>(bytes.data(), bytes.size())));
  const uint32_t n = r.U32();
  GlobalStatsMap map;
  for (uint32_t i = 0; i < n && r.status().ok(); ++i) {
    std::string name = r.Str();
    std::string blob = r.Str();
    SPINDLE_RETURN_IF_ERROR(r.status());
    SPINDLE_ASSIGN_OR_RETURN(GlobalStatsPtr stats,
                             GlobalStats::Deserialize(blob));
    map.emplace(std::move(name), std::move(stats));
  }
  SPINDLE_RETURN_IF_ERROR(r.status());
  return map;
}

}  // namespace shard
}  // namespace spindle
