#include "shard/wire.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spindle {
namespace shard {

namespace {

std::string TakeWord(std::string* rest) {
  size_t start = rest->find_first_not_of(' ');
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  size_t end = rest->find(' ', start);
  std::string word;
  if (end == std::string::npos) {
    word = rest->substr(start);
    rest->clear();
  } else {
    word = rest->substr(start, end - start);
    rest->erase(0, end + 1);
  }
  return word;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ModelFromName(const std::string& name, RankModel* out) {
  if (name == "bm25") {
    *out = RankModel::kBm25;
  } else if (name == "tfidf") {
    *out = RankModel::kTfIdf;
  } else if (name == "lm-dirichlet") {
    *out = RankModel::kLmDirichlet;
  } else if (name == "lm-jm") {
    *out = RankModel::kLmJelinekMercer;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatTraceToken(uint64_t trace_id, uint64_t parent_span) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tid=%llx:%llu",
                static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(parent_span));
  return buf;
}

bool ParseTraceToken(const std::string& word, uint64_t* trace_id,
                     uint64_t* parent_span) {
  if (word.compare(0, 4, "tid=") != 0) return false;
  const char* p = word.c_str() + 4;
  errno = 0;
  char* end = nullptr;
  unsigned long long tid = std::strtoull(p, &end, 16);
  if (errno != 0 || end == p || *end != ':' || tid == 0) return false;
  p = end + 1;
  errno = 0;
  unsigned long long span = std::strtoull(p, &end, 10);
  if (errno != 0 || end == p || *end != '\0') return false;
  *trace_id = tid;
  *parent_span = span;
  return true;
}

std::string EncodeSearchG(const std::string& collection, int64_t deadline_ms,
                          const SearchOptions& options,
                          const QueryGlobalStats& global,
                          uint64_t trace_id, uint64_t parent_span) {
  std::string line = "SEARCHG ";
  if (trace_id != 0) {
    line += FormatTraceToken(trace_id, parent_span);
    line += ' ';
  }
  line += collection;
  line += ' ';
  line += std::to_string(options.top_k);
  line += ' ';
  line += std::to_string(deadline_ms);
  line += ' ';
  line += RankModelName(options.model);
  line += ' ';
  line += FormatDouble(options.bm25.k1);
  line += ' ';
  line += FormatDouble(options.bm25.b);
  line += ' ';
  line += FormatDouble(options.dirichlet.mu);
  line += ' ';
  line += FormatDouble(options.jm.lambda);
  line += ' ';
  line += std::to_string(global.num_docs);
  line += ' ';
  line += std::to_string(global.total_postings);
  line += ' ';
  line += FormatDouble(global.avg_doc_len);
  line += ' ';
  line += std::to_string(global.terms.size());
  for (const QueryGlobalStats::Term& t : global.terms) {
    line += ' ';
    line += std::to_string(t.df);
    line += ' ';
    line += std::to_string(t.cf);
    line += ' ';
    line += t.term;
  }
  return line;
}

Status ParseSearchG(std::string rest, std::string* collection,
                    int64_t* deadline_ms, SearchOptions* options,
                    QueryGlobalStats* global) {
  const Status bad =
      Status::InvalidArgument("SEARCHG: malformed request line");
  *collection = TakeWord(&rest);
  if (collection->empty()) return bad;
  int64_t k = 0;
  if (!ParseInt64(TakeWord(&rest), &k) || k <= 0) {
    return Status::InvalidArgument("SEARCHG: k must be a positive integer");
  }
  options->top_k = static_cast<size_t>(k);
  if (!ParseInt64(TakeWord(&rest), deadline_ms)) return bad;
  if (!ModelFromName(TakeWord(&rest), &options->model)) {
    return Status::InvalidArgument(
        "SEARCHG: unknown model (want bm25|tfidf|lm-dirichlet|lm-jm)");
  }
  if (!ParseDouble(TakeWord(&rest), &options->bm25.k1) ||
      !ParseDouble(TakeWord(&rest), &options->bm25.b) ||
      !ParseDouble(TakeWord(&rest), &options->dirichlet.mu) ||
      !ParseDouble(TakeWord(&rest), &options->jm.lambda)) {
    return bad;
  }
  options->phrase_boost = 0.0;
  if (!ParseInt64(TakeWord(&rest), &global->num_docs) ||
      !ParseInt64(TakeWord(&rest), &global->total_postings) ||
      !ParseDouble(TakeWord(&rest), &global->avg_doc_len)) {
    return bad;
  }
  int64_t nterms = 0;
  if (!ParseInt64(TakeWord(&rest), &nterms) || nterms < 0) return bad;
  global->terms.clear();
  global->terms.reserve(static_cast<size_t>(nterms));
  for (int64_t i = 0; i < nterms; ++i) {
    QueryGlobalStats::Term t;
    if (!ParseInt64(TakeWord(&rest), &t.df) ||
        !ParseInt64(TakeWord(&rest), &t.cf)) {
      return bad;
    }
    t.term = TakeWord(&rest);
    if (t.term.empty()) return bad;
    global->terms.push_back(std::move(t));
  }
  if (!rest.empty()) return bad;
  return Status::OK();
}

}  // namespace shard
}  // namespace spindle
