/// \file global_stats.h
/// \brief Full-collection statistics for bit-identical sharded ranking.
///
/// Every ranking model Spindle serves scores a document with two kinds of
/// input: per-document quantities (tf, doc length — local to whichever
/// shard holds the document) and *collection-level* quantities (document
/// count, average document length, per-term df/cf — properties of the
/// WHOLE collection). A shard that scored with its own partition's
/// statistics would rank the same document differently depending on which
/// shard it landed on, and a coordinator merge of such scores would not
/// equal single-node ranking. The soundness rule for distributed top-k is
/// therefore: *score locally, but with global statistics* (the ODYS /
/// scatter-gather blueprint; see docs/sharding.md).
///
/// GlobalStats is that global view: computed once over the full
/// collection (either from a full index, or by integer-summing the
/// disjoint shards' indexes — identical by construction), persisted in
/// every shard snapshot, and resolved per query into the small
/// QueryGlobalStats record that ships with each sharded search.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/indexing.h"
#include "ir/searcher.h"
#include "text/analyzer.h"

namespace spindle {
namespace shard {

/// \brief Per-term global statistics: document frequency and collection
/// frequency over the full collection.
struct TermStats {
  int64_t df = 0;
  int64_t cf = 0;
};

class GlobalStats;
using GlobalStatsPtr = std::shared_ptr<const GlobalStats>;

/// \brief Immutable full-collection statistics under one analyzer
/// configuration. Thread-safe by construction (all accessors are const
/// over data frozen at build time).
class GlobalStats {
 public:
  /// \brief Accumulates statistics across disjoint partitions. Because
  /// partitions are disjoint, every global statistic is an exact integer
  /// sum of the per-partition values — merging the N shard indexes yields
  /// bit-identical statistics to indexing the full collection.
  class Merger {
   public:
    /// \brief Folds one partition's index in. All partitions must use the
    /// same analyzer configuration (checked against the first Add).
    Status Add(const TextIndex& index);

    /// \brief Folds one partition's already-extracted statistics in —
    /// what a coordinator merges after FLUSH, when each shard answers
    /// GSTATSL with the statistics of its rebuilt partition index.
    Status Add(const GlobalStats& stats);

    /// \brief Freezes the accumulated statistics. The merger is spent
    /// afterwards.
    Result<GlobalStatsPtr> Finish();

   private:
    bool any_ = false;
    std::string analyzer_signature_;
    int64_t num_docs_ = 0;
    int64_t total_postings_ = 0;
    std::unordered_map<std::string, TermStats> terms_;
  };

  /// \brief Extracts the statistics of a single (full-collection) index.
  static Result<GlobalStatsPtr> FromIndex(const TextIndex& index);

  /// \brief Builds a throwaway index over `docs` and extracts its
  /// statistics. One-time full-collection pass — the generate path of a
  /// shard server uses it at startup; snapshots avoid repeating it.
  static Result<GlobalStatsPtr> Compute(const RelationPtr& docs,
                                        const AnalyzerOptions& analyzer);

  int64_t num_docs() const { return num_docs_; }
  int64_t total_postings() const { return total_postings_; }
  /// \brief total_postings / num_docs in double arithmetic — the exact
  /// expression shape TextIndex::Build uses, so shard-side model setup
  /// sees the identical double.
  double avg_doc_len() const { return avg_doc_len_; }
  size_t num_terms() const { return terms_.size(); }
  /// \brief Signature of the analyzer the statistics were computed under;
  /// queries must be analyzed with a matching configuration.
  const std::string& analyzer_signature() const {
    return analyzer_signature_;
  }

  /// \brief Global statistics for one (post-analysis) term, or nullptr if
  /// the term occurs nowhere in the collection.
  const TermStats* Find(const std::string& term) const;

  /// \brief Resolves a raw query against the global dictionary: analyzes
  /// it with `analyzer` (whose signature must match), keeps the terms
  /// that occur anywhere in the collection — in query order, duplicates
  /// preserved, exactly the single-node qterms semantics — and attaches
  /// each term's global df/cf. The result is what a coordinator ships to
  /// every shard.
  Result<QueryGlobalStats> ResolveQuery(const std::string& query,
                                        const Analyzer& analyzer) const;

  /// \brief Terms in lexicographic order — the canonical order used by
  /// Serialize and the wire form, so equal statistics always produce
  /// byte-equal encodings.
  std::vector<std::pair<std::string, TermStats>> SortedTerms() const;

  /// \brief Compact binary encoding (storage/snapshot.h ByteWriter).
  std::string Serialize() const;
  static Result<GlobalStatsPtr> Deserialize(std::string_view bytes);

  /// \brief Line-protocol form, used by the GSTATS command: a header row
  /// "<num_docs> <total_postings> <analyzer signature>" followed by one
  /// "<df> <cf> <term>" row per term (signature and term last on their
  /// rows — they are the only fields that may contain spaces or parens).
  std::vector<std::string> ToWireRows() const;
  static Result<GlobalStatsPtr> FromWireRows(
      const std::vector<std::string>& rows);

 private:
  GlobalStats() = default;

  int64_t num_docs_ = 0;
  int64_t total_postings_ = 0;
  double avg_doc_len_ = 0.0;
  std::string analyzer_signature_;
  std::unordered_map<std::string, TermStats> terms_;
};

/// \brief Statistics per collection name — what a shard snapshot stores
/// under its "gstats" section and a QueryService keeps for sharded
/// serving.
using GlobalStatsMap = std::map<std::string, GlobalStatsPtr>;

std::string SerializeGlobalStatsMap(const GlobalStatsMap& map);
Result<GlobalStatsMap> DeserializeGlobalStatsMap(std::string_view bytes);

/// \brief Section name the sharding layer uses inside snapshot files.
inline constexpr const char* kGlobalStatsSection = "gstats";

}  // namespace shard
}  // namespace spindle
