/// \file span_wire.h
/// \brief Compact wire serialization of a tracer's spans, used by the
/// shard `TRACEPULL` command: the coordinator pulls a shard request's
/// spans and splices them into its own tracer (Tracer::ImportSpans) so
/// `ExportChromeTrace` shows one fleet-wide timeline.
///
/// Format (one row per line, rows carried inside an OK block):
///
///   trace=<hex> parent=<span> now=<ns> spans=<n> dropped=<d>
///   <id> <parent> <lane> <instant> <start_ns> <end_ns> <cat> <name>
///       [c:<key>=<val>]... [n:<key>=<val>]...     (one physical line)
///
/// Free-text fields (category, name, note keys/values) are
/// percent-encoded so rows stay single-line and space-splittable. The
/// header's `now` is the shard's NowNs at serialization time; together
/// with the request span's start/end it lets the puller compute the
/// clock offset between the two processes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace spindle {
namespace obs {

/// \brief A serialized (or parsed) span payload.
struct SpanPayload {
  uint64_t trace_id = 0;     ///< the trace these spans belong to
  uint64_t parent_span = 0;  ///< foreign parent the roots attach under
  uint64_t now_ns = 0;       ///< source's NowNs at serialization
  uint64_t dropped = 0;
  std::vector<SpanRecord> spans;
};

/// \brief Renders the payload as wire rows (header + one row per span).
std::vector<std::string> SpanPayloadToRows(const SpanPayload& payload);

/// \brief Parses wire rows back into a payload. Parsed category and
/// counter/note keys are interned process-wide (SpanRecord stores static
/// strings), which is fine: span taxonomies are small and fixed.
Result<SpanPayload> SpanPayloadFromRows(
    const std::vector<std::string>& rows);

}  // namespace obs
}  // namespace spindle
