#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

namespace spindle {
namespace obs {

namespace {

/// Thread-local tracing state: the ambient context plus a one-entry lane
/// cache so repeated spans on the same thread skip the tracer's atomic.
struct ThreadState {
  TraceContext ctx;
  const Tracer* lane_tracer = nullptr;
  uint32_t lane = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

uint64_t NowNs() {
  using clock = std::chrono::steady_clock;
  // Magic static: every tracer in the process shares one epoch, so spans
  // from concurrent requests merge onto a single exportable timeline.
  static const clock::time_point epoch = clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

Tracer::Tracer(size_t max_spans)
    : trace_id_(NextTraceId()), max_spans_(max_spans) {}

uint64_t Tracer::Begin(const char* category, std::string name,
                       uint64_t parent) {
  SpanRecord rec;
  rec.parent = parent;
  rec.category = category;
  rec.name = std::move(name);
  rec.lane = LaneForCurrentThread();
  rec.start_ns = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  rec.id = spans_.size() + 1;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::End(uint64_t id,
                 std::vector<std::pair<const char*, int64_t>> counters,
                 std::vector<std::pair<const char*, std::string>> notes) {
  if (id == 0) return;
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  rec.end_ns = now;
  rec.counters = std::move(counters);
  rec.notes = std::move(notes);
}

void Tracer::Instant(
    const char* category, std::string name, uint64_t parent,
    std::vector<std::pair<const char*, int64_t>> counters,
    std::vector<std::pair<const char*, std::string>> notes) {
  SpanRecord rec;
  rec.parent = parent;
  rec.category = category;
  rec.name = std::move(name);
  rec.lane = LaneForCurrentThread();
  rec.start_ns = NowNs();
  rec.end_ns = rec.start_ns;
  rec.instant = true;
  rec.counters = std::move(counters);
  rec.notes = std::move(notes);
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rec.id = spans_.size() + 1;
  spans_.push_back(std::move(rec));
}

uint32_t Tracer::LaneForCurrentThread() {
  ThreadState& state = State();
  if (state.lane_tracer != this) {
    state.lane_tracer = this;
    state.lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
  }
  return state.lane;
}

void Tracer::NameLane(uint32_t lane, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [l, n] : lane_names_) {
    if (l == lane) {
      n = std::move(name);
      return;
    }
  }
  lane_names_.emplace_back(lane, std::move(name));
}

size_t Tracer::ImportSpans(
    const std::vector<SpanRecord>& foreign, uint64_t attach_under,
    int64_t offset_ns, const std::string& lane_name,
    std::vector<std::pair<const char*, std::string>> root_notes) {
  if (foreign.empty()) return 0;
  auto shift = [&](uint64_t ns) -> uint64_t {
    if (ns == 0) return 0;  // open span stays open
    int64_t shifted = static_cast<int64_t>(ns) + offset_ns;
    return shifted > 0 ? static_cast<uint64_t>(shifted) : 1;
  };
  std::lock_guard<std::mutex> lock(mu_);
  // Foreign ids remap into this tracer's id space; parents precede
  // children in Begin order, so a single pass resolves every edge.
  std::vector<std::pair<uint64_t, uint64_t>> id_map;
  std::vector<std::pair<uint32_t, uint32_t>> lane_map;
  size_t imported = 0;
  for (const SpanRecord& f : foreign) {
    if (spans_.size() >= max_spans_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SpanRecord rec = f;
    rec.id = spans_.size() + 1;
    id_map.emplace_back(f.id, rec.id);
    rec.parent = attach_under;
    if (f.parent != 0) {
      for (const auto& [from, to] : id_map) {
        if (from == f.parent) {
          rec.parent = to;
          break;
        }
      }
    }
    uint32_t lane = UINT32_MAX;
    for (const auto& [from, to] : lane_map) {
      if (from == f.lane) {
        lane = to;
        break;
      }
    }
    if (lane == UINT32_MAX) {
      lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
      std::string label =
          lane_map.empty()
              ? lane_name
              : lane_name + "#" + std::to_string(lane_map.size());
      lane_names_.emplace_back(lane, std::move(label));
      lane_map.emplace_back(f.lane, lane);
    }
    rec.lane = lane;
    rec.start_ns = shift(f.start_ns);
    rec.end_ns = shift(f.end_ns);
    if (f.parent == 0) {
      for (const auto& note : root_notes) rec.notes.push_back(note);
    }
    spans_.push_back(std::move(rec));
    ++imported;
  }
  return imported;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Tracer::RenderTree(const TreeOptions& options) const {
  const std::vector<SpanRecord> spans = Snapshot();

  // Which spans make it into the tree view?
  std::vector<bool> included(spans.size() + 1, false);
  for (const SpanRecord& s : spans) {
    if (s.instant && !options.include_events) continue;
    if (std::string_view(s.category) == "exec" && !options.include_exec) {
      continue;
    }
    included[s.id] = true;
  }

  // Reattach each included span to its nearest included ancestor, so
  // filtering "exec" task spans doesn't orphan the operator spans that
  // ran inside pool tasks.
  std::vector<uint64_t> effective_parent(spans.size() + 1, 0);
  for (const SpanRecord& s : spans) {
    if (!included[s.id]) continue;
    uint64_t p = s.parent;
    while (p != 0 && !included[p]) p = spans[p - 1].parent;
    effective_parent[s.id] = p;
  }

  // Children in recording order (== Begin order, a stable DFS-ish order).
  std::vector<std::vector<uint64_t>> children(spans.size() + 1);
  std::vector<uint64_t> roots;
  for (const SpanRecord& s : spans) {
    if (!included[s.id]) continue;
    uint64_t p = effective_parent[s.id];
    if (p == 0) {
      roots.push_back(s.id);
    } else {
      children[p].push_back(s.id);
    }
  }

  std::string out;
  // Iterative DFS; stack holds (id, depth).
  std::vector<std::pair<uint64_t, size_t>> stack;
  for (size_t i = roots.size(); i-- > 0;) stack.push_back({roots[i], 0});
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& s = spans[id - 1];
    out.append(depth * 2, ' ');
    out += s.name;
    if (s.instant) {
      out += "  [event]";
    } else {
      out += "  ";
      out += FormatMs(s.end_ns == 0 ? NowNs() - s.start_ns
                                    : s.duration_ns());
    }
    for (const auto& [key, value] : s.counters) {
      out += "  ";
      out += key;
      out += "=";
      out += std::to_string(value);
    }
    for (const auto& [key, value] : s.notes) {
      out += "  ";
      out += key;
      out += "=";
      if (value.size() > options.max_note_len) {
        out.append(value, 0, options.max_note_len);
        out += "...";
      } else {
        out += value;
      }
    }
    out += "\n";
    const std::vector<uint64_t>& kids = children[id];
    for (size_t i = kids.size(); i-- > 0;) {
      stack.push_back({kids[i], depth + 1});
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Tracer::AppendChromeEvents(std::string* out, bool* first) const {
  std::vector<SpanRecord> spans;
  std::vector<std::pair<uint32_t, std::string>> lane_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    lane_names = lane_names_;
  }
  const uint64_t now = NowNs();
  char buf[128];

  auto comma = [&] {
    if (!*first) *out += ",\n";
    *first = false;
  };

  // Process metadata: name this tracer's "process" by its trace id.
  comma();
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":%llu,\"tid\":0,"
                "\"name\":\"process_name\",\"args\":{\"name\":",
                static_cast<unsigned long long>(trace_id_));
  *out += buf;
  *out += "\"trace " + std::to_string(trace_id_) + "\"}}";

  // Thread (lane) metadata: every lane that appears gets a name —
  // either the registered label (imported shard lanes) or "lane N".
  uint32_t max_lane = 0;
  for (const SpanRecord& s : spans) max_lane = std::max(max_lane, s.lane);
  for (uint32_t lane = 0; lane <= max_lane && !spans.empty(); ++lane) {
    comma();
    std::string label = "lane " + std::to_string(lane);
    for (const auto& [l, n] : lane_names) {
      if (l == lane) {
        label = n;
        break;
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%llu,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  static_cast<unsigned long long>(trace_id_), lane);
    *out += buf;
    *out += EscapeJson(label);
    *out += "\"}}";
  }

  for (const SpanRecord& s : spans) {
    comma();
    const uint64_t start_us = s.start_ns / 1000;
    if (s.instant) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%llu,\"tid\":%u,"
                    "\"ts\":%llu,",
                    static_cast<unsigned long long>(trace_id_), s.lane,
                    static_cast<unsigned long long>(start_us));
    } else {
      const uint64_t end_ns = s.end_ns == 0 ? now : s.end_ns;
      const uint64_t dur_us =
          end_ns >= s.start_ns ? (end_ns - s.start_ns) / 1000 : 0;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":%llu,\"tid\":%u,"
                    "\"ts\":%llu,\"dur\":%llu,",
                    static_cast<unsigned long long>(trace_id_), s.lane,
                    static_cast<unsigned long long>(start_us),
                    static_cast<unsigned long long>(dur_us));
    }
    *out += buf;
    *out += "\"cat\":\"";
    *out += EscapeJson(s.category);
    *out += "\",\"name\":\"";
    *out += EscapeJson(s.name);
    *out += "\",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : s.counters) {
      if (!first_arg) *out += ",";
      first_arg = false;
      *out += "\"";
      *out += EscapeJson(key);
      *out += "\":";
      *out += std::to_string(value);
    }
    for (const auto& [key, value] : s.notes) {
      if (!first_arg) *out += ",";
      first_arg = false;
      *out += "\"";
      *out += EscapeJson(key);
      *out += "\":\"";
      *out += EscapeJson(value);
      *out += "\"";
    }
    std::snprintf(buf, sizeof(buf), ",\"span\":%llu,\"parent\":%llu}}",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent));
    // Replace leading "," when args was empty to keep valid JSON.
    if (first_arg) {
      *out += buf + 1;  // skip the comma
    } else {
      *out += buf;
    }
  }
}

std::string Tracer::ExportChromeTrace() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendChromeEvents(&out, &first);
  out += "\n]}\n";
  return out;
}

std::string ExportChromeTrace(
    const std::vector<std::shared_ptr<const Tracer>>& tracers) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& t : tracers) {
    if (t) t->AppendChromeEvents(&out, &first);
  }
  out += "\n]}\n";
  return out;
}

TraceContext CurrentTraceContext() { return State().ctx; }

bool TracingActive() { return State().ctx.tracer != nullptr; }

ScopedTracer::ScopedTracer(Tracer* tracer) : prev_(State().ctx) {
  State().ctx = TraceContext{tracer, 0};
}

ScopedTracer::~ScopedTracer() { State().ctx = prev_; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(State().ctx) {
  State().ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { State().ctx = prev_; }

Span::Span(const char* category, const char* name) {
  if (State().ctx.tracer == nullptr) return;  // disabled path
  Open(category, name);
}

Span::Span(const char* category, std::string name) {
  if (State().ctx.tracer == nullptr) return;  // disabled path
  Open(category, std::move(name));
}

void Span::Open(const char* category, std::string name) {
  ThreadState& state = State();
  tracer_ = state.ctx.tracer;
  prev_span_ = state.ctx.span;
  id_ = tracer_->Begin(category, std::move(name), prev_span_);
  state.ctx.span = id_ == 0 ? prev_span_ : id_;
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  State().ctx.span = prev_span_;
  if (id_ != 0) tracer_->End(id_, std::move(counters_), std::move(notes_));
}

void Span::Add(const char* key, int64_t delta) {
  if (tracer_ == nullptr || id_ == 0) return;
  for (auto& [k, v] : counters_) {
    if (k == key || std::strcmp(k, key) == 0) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(key, delta);
}

void Span::Note(const char* key, std::string value) {
  if (tracer_ == nullptr || id_ == 0) return;
  notes_.emplace_back(key, std::move(value));
}

void Event(const char* category, const char* name) {
  TraceContext ctx = State().ctx;
  if (ctx.tracer == nullptr) return;
  ctx.tracer->Instant(category, name, ctx.span);
}

void Event(const char* category, const char* name,
           std::initializer_list<std::pair<const char*, int64_t>> counters) {
  TraceContext ctx = State().ctx;
  if (ctx.tracer == nullptr) return;
  ctx.tracer->Instant(category, name, ctx.span,
                      std::vector<std::pair<const char*, int64_t>>(counters));
}

void TraceAggregator::Merge(const Tracer& tracer) {
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& s : spans) {
    if (s.instant || s.end_ns == 0) continue;
    std::string op = std::string(s.category) + "/" + s.name;
    OpStat* stat = nullptr;
    for (OpStat& candidate : ops_) {
      if (candidate.op == op) {
        stat = &candidate;
        break;
      }
    }
    if (stat == nullptr) {
      ops_.push_back(OpStat{std::move(op), 0, 0, 0});
      stat = &ops_.back();
    }
    stat->count++;
    stat->total_ns += s.duration_ns();
    stat->max_ns = std::max(stat->max_ns, s.duration_ns());
  }
}

std::vector<TraceAggregator::OpStat> TraceAggregator::Top(size_t n) const {
  std::vector<OpStat> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = ops_;
  }
  std::sort(out.begin(), out.end(), [](const OpStat& a, const OpStat& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.op < b.op;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string TraceAggregator::TopJson(size_t n) const {
  std::vector<OpStat> top = Top(n);
  std::string out = "[";
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out += ",";
    const OpStat& s = top[i];
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "{\"op\":\"%s\",\"count\":%llu,\"total_us\":%llu,"
        "\"max_us\":%llu,\"mean_us\":%.1f}",
        EscapeJson(s.op).c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.total_ns / 1000),
        static_cast<unsigned long long>(s.max_ns / 1000),
        s.count == 0 ? 0.0
                     : static_cast<double>(s.total_ns) / 1000.0 /
                           static_cast<double>(s.count));
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace spindle
