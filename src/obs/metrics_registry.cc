#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

namespace spindle {
namespace obs {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

int LatencyHistogram::BucketOf(uint64_t us) {
  if (us < (1u << kSubBits)) return static_cast<int>(us);  // exact tiny values
  int octave = std::bit_width(us) - 1;                     // >= kSubBits
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    us = (uint64_t{1} << kOctaves) - 1;
  }
  // Top kSubBits bits below the leading bit select the linear sub-bucket.
  uint64_t sub = (us >> (octave - kSubBits)) & ((1u << kSubBits) - 1);
  return (octave << kSubBits) + static_cast<int>(sub);
}

uint64_t LatencyHistogram::BucketLowerUs(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
  int octave = bucket >> kSubBits;
  uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBits) - 1));
  uint64_t base = uint64_t{1} << octave;
  uint64_t step = base >> kSubBits;
  return base + sub * step;
}

uint64_t LatencyHistogram::BucketUpperUs(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
  int octave = bucket >> kSubBits;
  uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBits) - 1));
  uint64_t base = uint64_t{1} << octave;
  uint64_t step = base >> kSubBits;
  return base + (sub + 1) * step - 1;
}

uint64_t LatencyHistogram::PercentileUs(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  // Nearest-rank: the ceil(q/100 * total)-th smallest sample (1-based).
  uint64_t rank = static_cast<uint64_t>(q / 100.0 * total);
  if (rank * 100 < static_cast<uint64_t>(q * total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t c = counts_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate: the rank-th sample is the r-th of c samples in this
      // bucket; assume they are spread evenly over [lower, upper].
      uint64_t lower = BucketLowerUs(b);
      uint64_t upper = BucketUpperUs(b);
      uint64_t r = rank - seen;  // 1..c
      uint64_t est = lower + (upper - lower + 1) * r / c;
      if (est > upper) est = upper;
      uint64_t mx = max_us();
      if (mx > 0 && est > mx) est = mx;
      return est;
    }
    seen += c;
  }
  return max_us();
}

std::string LatencyHistogram::ToJson() const {
  uint64_t n = count();
  double mean = n == 0 ? 0.0 : static_cast<double>(sum_us()) /
                                   static_cast<double>(n);
  std::string out = "{";
  out += "\"count\":" + std::to_string(n);
  out += ",\"mean_us\":" + std::to_string(mean);
  out += ",\"max_us\":" + std::to_string(max_us());
  out += ",\"p50_us\":" + std::to_string(PercentileUs(50));
  out += ",\"p95_us\":" + std::to_string(PercentileUs(95));
  out += ",\"p99_us\":" + std::to_string(PercentileUs(99));
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Integers print exactly (counters stay greppable); everything else uses
/// %.17g so a parse/re-render round trip is lossless.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += FormatValue(value);
  *out += '\n';
}

std::string JoinLabels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& labels,
                     const LatencyHistogram& hist) {
  uint64_t cum = 0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    uint64_t c = hist.bucket_count(b);
    if (c == 0) continue;
    cum += c;
    std::string le =
        "le=\"" + std::to_string(LatencyHistogram::BucketUpperUs(b)) + "\"";
    AppendSample(out, name + "_bucket", JoinLabels(labels, le),
                 static_cast<double>(cum));
  }
  AppendSample(out, name + "_bucket", JoinLabels(labels, "le=\"+Inf\""),
               static_cast<double>(hist.count()));
  AppendSample(out, name + "_sum", labels,
               static_cast<double>(hist.sum_us()));
  AppendSample(out, name + "_count", labels,
               static_cast<double>(hist.count()));
}

}  // namespace

std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  return out;
}

MetricsRegistry::Family* MetricsRegistry::FamilyOf(const std::string& name,
                                                   const std::string& help,
                                                   MetricType type) {
  for (auto& f : families_) {
    if (f.name == name) return &f;
  }
  families_.push_back(Family{name, help, type, {}});
  return &families_.back();
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels,
                                 const std::atomic<uint64_t>* cell) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kCounter;
  e.labels = labels;
  e.cell = cell;
  FamilyOf(name, help, MetricType::kCounter)->entries.push_back(std::move(e));
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help,
                               const std::string& labels,
                               const std::atomic<uint64_t>* cell) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kGauge;
  e.labels = labels;
  e.cell = cell;
  FamilyOf(name, help, MetricType::kGauge)->entries.push_back(std::move(e));
}

void MetricsRegistry::AddCounterFn(const std::string& name,
                                   const std::string& help,
                                   const std::string& labels,
                                   std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kCounter;
  e.labels = labels;
  e.fn = std::move(fn);
  FamilyOf(name, help, MetricType::kCounter)->entries.push_back(std::move(e));
}

void MetricsRegistry::AddGaugeFn(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels,
                                 std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kGauge;
  e.labels = labels;
  e.fn = std::move(fn);
  FamilyOf(name, help, MetricType::kGauge)->entries.push_back(std::move(e));
}

void MetricsRegistry::AddHistogram(const std::string& name,
                                   const std::string& help,
                                   const std::string& labels,
                                   const LatencyHistogram* hist) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kHistogram;
  e.labels = labels;
  e.hist = hist;
  FamilyOf(name, help, MetricType::kHistogram)
      ->entries.push_back(std::move(e));
}

void MetricsRegistry::AddGaugeCallback(
    const std::string& name, const std::string& help,
    std::function<void(std::vector<std::pair<std::string, double>>*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricType::kGauge;
  e.multi = std::move(fn);
  FamilyOf(name, help, MetricType::kGauge)->entries.push_back(std::move(e));
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& f : families_) {
    if (!f.help.empty()) {
      out += "# HELP " + f.name + " " + EscapeHelp(f.help) + "\n";
    }
    out += "# TYPE " + f.name + " ";
    out += TypeName(f.type);
    out += '\n';
    for (const auto& e : f.entries) {
      if (e.hist != nullptr) {
        AppendHistogram(&out, f.name, e.labels, *e.hist);
      } else if (e.multi) {
        std::vector<std::pair<std::string, double>> samples;
        e.multi(&samples);
        for (const auto& [labels, value] : samples) {
          AppendSample(&out, f.name, labels, value);
        }
      } else if (e.fn) {
        AppendSample(&out, f.name, e.labels, e.fn());
      } else if (e.cell != nullptr) {
        AppendSample(&out, f.name, e.labels,
                     static_cast<double>(
                         e.cell->load(std::memory_order_relaxed)));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scrape parsing
// ---------------------------------------------------------------------------

namespace {

/// Splits a label body into (key, quoted-value) pairs, honouring quotes
/// and backslash escapes inside values.
std::vector<std::pair<std::string, std::string>> SplitLabels(
    const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t i = 0;
  while (i < body.size()) {
    size_t eq = body.find('=', i);
    if (eq == std::string::npos) break;
    std::string key = body.substr(i, eq - i);
    size_t j = eq + 1;
    std::string value;
    if (j < body.size() && body[j] == '"') {
      value += '"';
      ++j;
      while (j < body.size()) {
        char c = body[j];
        value += c;
        ++j;
        if (c == '\\' && j < body.size()) {
          value += body[j];
          ++j;
        } else if (c == '"') {
          break;
        }
      }
    }
    out.emplace_back(std::move(key), std::move(value));
    if (j < body.size() && body[j] == ',') ++j;
    i = j;
  }
  return out;
}

std::string StripLabel(const std::string& body, const std::string& key,
                       std::string* removed_value) {
  auto pairs = SplitLabels(body);
  std::string out;
  for (const auto& [k, v] : pairs) {
    if (k == key) {
      if (removed_value != nullptr) *removed_value = v;
      continue;
    }
    if (!out.empty()) out += ',';
    out += k + "=" + v;
  }
  return out;
}

double ParseLeValue(const std::string& quoted) {
  // quoted is `"123"` or `"+Inf"`.
  std::string inner = quoted;
  if (inner.size() >= 2 && inner.front() == '"' && inner.back() == '"') {
    inner = inner.substr(1, inner.size() - 2);
  }
  if (inner == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(inner.c_str(), nullptr);
}

bool TakeToken(const std::string& line, size_t* pos, std::string* out) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  if (*pos == start) return false;
  *out = line.substr(start, *pos - start);
  return true;
}

}  // namespace

Result<std::vector<PrometheusFamily>> ParsePrometheusText(
    const std::string& text) {
  std::vector<PrometheusFamily> families;
  auto family_of = [&](const std::string& name) -> PrometheusFamily* {
    for (auto& f : families) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };
  // A sample `X_bucket`/`X_sum`/`X_count` belongs to histogram family X.
  auto owner_of = [&](const std::string& sample) -> PrometheusFamily* {
    if (PrometheusFamily* f = family_of(sample)) return f;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t n = std::string(suffix).size();
      if (sample.size() > n &&
          sample.compare(sample.size() - n, n, suffix) == 0) {
        PrometheusFamily* f = family_of(sample.substr(0, sample.size() - n));
        if (f != nullptr && f->type == MetricType::kHistogram) return f;
      }
    }
    return nullptr;
  };

  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      size_t p = 1;
      std::string kind, name;
      if (!TakeToken(line, &p, &kind) || !TakeToken(line, &p, &name)) {
        continue;
      }
      if (kind == "TYPE") {
        std::string type;
        TakeToken(line, &p, &type);
        PrometheusFamily* f = family_of(name);
        if (f == nullptr) {
          families.push_back(PrometheusFamily{name, "", MetricType::kGauge,
                                              {}});
          f = &families.back();
        }
        if (type == "counter") {
          f->type = MetricType::kCounter;
        } else if (type == "histogram") {
          f->type = MetricType::kHistogram;
        } else {
          f->type = MetricType::kGauge;
        }
      } else if (kind == "HELP") {
        while (p < line.size() && line[p] == ' ') ++p;
        PrometheusFamily* f = family_of(name);
        if (f == nullptr) {
          families.push_back(PrometheusFamily{name, "", MetricType::kGauge,
                                              {}});
          f = &families.back();
        }
        f->help = line.substr(p);
      }
      continue;
    }
    // Sample line: name[{labels}] value
    PrometheusSample sample;
    size_t brace = line.find('{');
    size_t name_end;
    if (brace != std::string::npos &&
        brace < line.find(' ')) {  // labels present
      sample.name = line.substr(0, brace);
      // Quote-aware scan for the closing brace.
      size_t j = brace + 1;
      bool in_quote = false;
      while (j < line.size()) {
        char c = line[j];
        if (in_quote) {
          if (c == '\\') {
            ++j;
          } else if (c == '"') {
            in_quote = false;
          }
        } else if (c == '"') {
          in_quote = true;
        } else if (c == '}') {
          break;
        }
        ++j;
      }
      if (j >= line.size()) {
        return Status(StatusCode::kInvalidArgument,
                      "unterminated label set: " + line);
      }
      sample.labels = line.substr(brace + 1, j - brace - 1);
      name_end = j + 1;
    } else {
      name_end = line.find(' ');
      if (name_end == std::string::npos) {
        return Status(StatusCode::kInvalidArgument,
                      "sample line without value: " + line);
      }
      sample.name = line.substr(0, name_end);
    }
    size_t p = name_end;
    std::string value;
    if (!TakeToken(line, &p, &value)) {
      return Status(StatusCode::kInvalidArgument,
                    "sample line without value: " + line);
    }
    if (value == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value.c_str(), &end);
      if (end == value.c_str()) {
        return Status(StatusCode::kInvalidArgument,
                      "bad sample value: " + line);
      }
    }
    PrometheusFamily* f = owner_of(sample.name);
    if (f == nullptr) {
      families.push_back(
          PrometheusFamily{sample.name, "", MetricType::kGauge, {}});
      f = &families.back();
    }
    f->samples.push_back(std::move(sample));
  }
  return families;
}

// ---------------------------------------------------------------------------
// Fleet aggregation
// ---------------------------------------------------------------------------

namespace {

std::string FormatLe(double le) {
  if (std::isinf(le)) return "+Inf";
  return FormatValue(le);
}

}  // namespace

std::string AggregateScrapes(
    const std::vector<std::pair<std::string, std::vector<PrometheusFamily>>>&
        shards) {
  // Family order: first appearance across shards.
  std::vector<std::pair<std::string, const PrometheusFamily*>> order;
  auto known = [&](const std::string& name) {
    for (const auto& [n, f] : order) {
      if (n == name) return true;
    }
    return false;
  };
  for (const auto& [shard, families] : shards) {
    (void)shard;
    for (const auto& f : families) {
      if (!known(f.name)) order.emplace_back(f.name, &f);
    }
  }

  std::string out;
  for (const auto& [name, meta] : order) {
    if (!meta->help.empty()) {
      out += "# HELP " + name + " " + meta->help + "\n";
    }
    out += "# TYPE " + name + " ";
    out += TypeName(meta->type);
    out += '\n';

    // Gather this family's samples from every shard.
    struct ShardSamples {
      const std::string* shard;
      const PrometheusFamily* family;
    };
    std::vector<ShardSamples> sources;
    for (const auto& [shard, families] : shards) {
      for (const auto& f : families) {
        if (f.name == name) sources.push_back({&shard, &f});
      }
    }

    if (meta->type == MetricType::kCounter) {
      // Exact fleet sums, keyed by (sample name, labels), in
      // first-appearance order.
      std::vector<std::pair<std::string, double>> sums;  // key -> sum
      for (const auto& src : sources) {
        for (const auto& s : src.family->samples) {
          std::string key = s.name + "\t" + s.labels;
          bool found = false;
          for (auto& [k, v] : sums) {
            if (k == key) {
              v += s.value;
              found = true;
              break;
            }
          }
          if (!found) sums.emplace_back(key, s.value);
        }
      }
      for (const auto& [key, sum] : sums) {
        size_t tab = key.find('\t');
        AppendSample(&out, key.substr(0, tab), key.substr(tab + 1), sum);
      }
    } else if (meta->type == MetricType::kHistogram) {
      // Bucket-wise merge: de-cumulate each shard's buckets, sum deltas
      // per le over the union of bounds, re-cumulate. Exact because every
      // shard shares the bucket layout. Grouped by the non-le label body
      // (normally empty or a fixed label set).
      std::vector<std::string> groups;  // label bodies sans le
      auto add_group = [&](const std::string& g) {
        for (const auto& x : groups) {
          if (x == g) return;
        }
        groups.push_back(g);
      };
      for (const auto& src : sources) {
        for (const auto& s : src.family->samples) {
          if (s.name == name + "_bucket") {
            add_group(StripLabel(s.labels, "le", nullptr));
          } else if (s.name == name + "_sum" || s.name == name + "_count") {
            add_group(s.labels);
          }
        }
      }
      for (const auto& group : groups) {
        std::map<double, double> deltas;  // le -> summed bucket delta
        double sum = 0.0, count = 0.0;
        for (const auto& src : sources) {
          std::vector<std::pair<double, double>> cum;  // le -> cumulative
          for (const auto& s : src.family->samples) {
            if (s.name == name + "_bucket") {
              std::string le;
              if (StripLabel(s.labels, "le", &le) != group) continue;
              cum.emplace_back(ParseLeValue(le), s.value);
            } else if (s.name == name + "_sum" && s.labels == group) {
              sum += s.value;
            } else if (s.name == name + "_count" && s.labels == group) {
              count += s.value;
            }
          }
          std::sort(cum.begin(), cum.end());
          double prev = 0.0;
          for (const auto& [le, c] : cum) {
            deltas[le] += c - prev;
            prev = c;
          }
        }
        double running = 0.0;
        for (const auto& [le, delta] : deltas) {
          running += delta;
          std::string le_label = "le=\"" + FormatLe(le) + "\"";
          AppendSample(&out, name + "_bucket", JoinLabels(group, le_label),
                       running);
        }
        AppendSample(&out, name + "_sum", group, sum);
        AppendSample(&out, name + "_count", group, count);
      }
    }

    // Per-shard series survive aggregation under a `shard=` label.
    for (const auto& src : sources) {
      std::string shard_label =
          "shard=\"" + EscapeLabelValue(*src.shard) + "\"";
      for (const auto& s : src.family->samples) {
        AppendSample(&out, s.name, JoinLabels(shard_label, s.labels),
                     s.value);
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace spindle
