#include "obs/span_wire.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace spindle {
namespace obs {

namespace {

/// SpanRecord keys are `const char*` (static strings in-process). Parsed
/// keys get the same property by interning into a leaked set — the span
/// taxonomy is small and fixed, so this is bounded.
const char* Intern(const std::string& s) {
  static std::mutex mu;
  static auto* pool = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return pool->insert(s).first->c_str();
}

/// Percent-encodes space, '%', tab, newline and CR so fields stay
/// single-token on a space-split line.
std::string Encode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == ' ' || c == '%' || c == '\t' || c == '\n' || c == '\r' ||
        c == '=') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string Decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      char hex[3] = {s[i + 1], s[i + 2], 0};
      out += static_cast<char>(std::strtoul(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

bool TakeWord(std::string* rest, std::string* out) {
  size_t start = rest->find_first_not_of(' ');
  if (start == std::string::npos) return false;
  size_t end = rest->find(' ', start);
  if (end == std::string::npos) end = rest->size();
  *out = rest->substr(start, end - start);
  rest->erase(0, end);
  return true;
}

bool TakeU64(std::string* rest, uint64_t* out) {
  std::string word;
  if (!TakeWord(rest, &word)) return false;
  char* end = nullptr;
  *out = std::strtoull(word.c_str(), &end, 10);
  return end == word.c_str() + word.size() && !word.empty();
}

bool TakeKeyed(std::string* rest, const char* key, uint64_t* out, int base) {
  std::string word;
  if (!TakeWord(rest, &word)) return false;
  std::string prefix = std::string(key) + "=";
  if (word.compare(0, prefix.size(), prefix) != 0) return false;
  char* end = nullptr;
  *out = std::strtoull(word.c_str() + prefix.size(), &end, base);
  return end == word.c_str() + word.size();
}

}  // namespace

std::vector<std::string> SpanPayloadToRows(const SpanPayload& payload) {
  std::vector<std::string> rows;
  rows.reserve(payload.spans.size() + 1);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "trace=%llx parent=%llu now=%llu spans=%zu dropped=%llu",
                static_cast<unsigned long long>(payload.trace_id),
                static_cast<unsigned long long>(payload.parent_span),
                static_cast<unsigned long long>(payload.now_ns),
                payload.spans.size(),
                static_cast<unsigned long long>(payload.dropped));
  rows.push_back(buf);
  for (const SpanRecord& s : payload.spans) {
    std::string row;
    std::snprintf(buf, sizeof(buf), "%llu %llu %u %d %llu %llu ",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent), s.lane,
                  s.instant ? 1 : 0,
                  static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.end_ns));
    row += buf;
    row += Encode(s.category);
    row += ' ';
    row += Encode(s.name);
    for (const auto& [key, value] : s.counters) {
      row += " c:";
      row += Encode(key);
      row += '=';
      row += std::to_string(value);
    }
    for (const auto& [key, value] : s.notes) {
      row += " n:";
      row += Encode(key);
      row += '=';
      row += Encode(value);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<SpanPayload> SpanPayloadFromRows(
    const std::vector<std::string>& rows) {
  auto bad = [](const std::string& row) {
    return Status(StatusCode::kInvalidArgument,
                  "malformed span payload row: " + row);
  };
  if (rows.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty span payload");
  }
  SpanPayload payload;
  {
    std::string rest = rows[0];
    uint64_t spans = 0;
    if (!TakeKeyed(&rest, "trace", &payload.trace_id, 16) ||
        !TakeKeyed(&rest, "parent", &payload.parent_span, 10) ||
        !TakeKeyed(&rest, "now", &payload.now_ns, 10) ||
        !TakeKeyed(&rest, "spans", &spans, 10) ||
        !TakeKeyed(&rest, "dropped", &payload.dropped, 10)) {
      return bad(rows[0]);
    }
    if (spans != rows.size() - 1) {
      return Status(StatusCode::kInvalidArgument,
                    "span payload header count mismatch");
    }
  }
  payload.spans.reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    std::string rest = rows[i];
    SpanRecord rec;
    uint64_t lane = 0, instant = 0;
    std::string cat, name;
    if (!TakeU64(&rest, &rec.id) || !TakeU64(&rest, &rec.parent) ||
        !TakeU64(&rest, &lane) || !TakeU64(&rest, &instant) ||
        !TakeU64(&rest, &rec.start_ns) || !TakeU64(&rest, &rec.end_ns) ||
        !TakeWord(&rest, &cat) || !TakeWord(&rest, &name)) {
      return bad(rows[i]);
    }
    rec.lane = static_cast<uint32_t>(lane);
    rec.instant = instant != 0;
    rec.category = Intern(Decode(cat));
    rec.name = Decode(name);
    std::string word;
    while (TakeWord(&rest, &word)) {
      bool is_counter = word.compare(0, 2, "c:") == 0;
      bool is_note = word.compare(0, 2, "n:") == 0;
      if (!is_counter && !is_note) return bad(rows[i]);
      size_t eq = word.find('=', 2);
      if (eq == std::string::npos) return bad(rows[i]);
      std::string key = Decode(word.substr(2, eq - 2));
      std::string value = word.substr(eq + 1);
      if (is_counter) {
        char* end = nullptr;
        int64_t v = std::strtoll(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size()) return bad(rows[i]);
        rec.counters.emplace_back(Intern(key), v);
      } else {
        rec.notes.emplace_back(Intern(key), Decode(value));
      }
    }
    payload.spans.push_back(std::move(rec));
  }
  return payload;
}

}  // namespace obs
}  // namespace spindle
