/// \file trace.h
/// \brief Query-level tracing & profiling: a low-overhead, thread-safe
/// Tracer with RAII Spans, used by every layer of the engine.
///
/// Design goals (docs/observability.md has the full write-up):
///
///  - **Zero cost when off.** The ambient tracer is a thread-local
///    pointer; every instrumentation point starts with one thread-local
///    read and one null check. No atomics, no clock reads, no
///    allocations on the disabled path, and results are bit-identical
///    with tracing on or off (tracing only observes, never steers).
///  - **Ambient, like cancellation.** A tracer is installed for a scope
///    with ScopedTracer (or travels inside RequestContext for served
///    queries) and TaskGroup::Spawn forwards the spawning thread's
///    TraceContext to pool workers, so spans emitted on a worker link to
///    the correct parent across threads.
///  - **One span taxonomy across the stack.** Categories: "server"
///    (request, admission), "spinql" (one span per operator node), "ir"
///    (search, rank_topk, index_build), "engine" (filter, hash_join,
///    group_aggregate, top_k), "exec" (task, morsel) and "cache"
///    (instant hit/miss/evict events). Each span carries a counter bag
///    (rows, docs_scored, queue_wait_us, ...) and string notes
///    (cache=hit, key=<signature>).
///
/// Consumers:
///  - Tracer::RenderTree — the EXPLAIN ANALYZE / TRACE operator tree
///    (per-node wall time, row counts, cache annotations);
///  - Tracer::ExportChromeTrace / obs::ExportChromeTrace — Chrome
///    trace-event JSON for chrome://tracing / Perfetto, with one lane
///    per participating thread;
///  - TraceAggregator — since-start rollups (count/total/max per span
///    kind) merged into the server's STATS command.
///
/// Lifetime: a Tracer must outlive every span recorded into it. All
/// engine fan-out joins before returning (TaskGroup::Wait /
/// ParallelFor), so a tracer owned by the caller of a query entry point
/// is always safe; served queries share ownership via the
/// RequestContext's shared_ptr.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spindle {
namespace obs {

/// \brief Nanoseconds since the process-wide trace epoch (the first call;
/// steady clock). All tracers share this epoch so traces from different
/// requests merge onto one timeline.
uint64_t NowNs();

/// \brief One recorded span (or instant event).
struct SpanRecord {
  uint64_t id = 0;      ///< 1-based, unique within its tracer
  uint64_t parent = 0;  ///< parent span id; 0 = root
  const char* category = "";  ///< static string: "spinql", "engine", ...
  std::string name;
  uint64_t start_ns = 0;  ///< NowNs() at Begin
  uint64_t end_ns = 0;    ///< NowNs() at End; 0 while still open
  uint32_t lane = 0;      ///< per-tracer thread lane (Chrome tid)
  bool instant = false;   ///< a point event (cache hit/miss/evict)
  std::vector<std::pair<const char*, int64_t>> counters;
  std::vector<std::pair<const char*, std::string>> notes;

  uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// \brief Rendering options for Tracer::RenderTree.
struct TreeOptions {
  /// Include "exec" spans (per-task / per-morsel). Off by default: the
  /// operator tree reads better without thousands of morsel lines; the
  /// Chrome export always has them.
  bool include_exec = false;
  /// Include instant events (the cache hit/miss/evict stream).
  bool include_events = false;
  /// Long string notes (materialization keys) are truncated to this.
  size_t max_note_len = 96;
};

/// \brief Collects spans for one traced unit of work (one request, one
/// EXPLAIN ANALYZE, one bench process). Thread-safe: any number of
/// threads may record concurrently; recording is one short mutex-guarded
/// append (spans are operator/morsel-grained, never per-row).
class Tracer {
 public:
  /// Spans recorded beyond `max_spans` are counted in dropped() and
  /// otherwise ignored, bounding memory for long-running trace sessions.
  static constexpr size_t kDefaultMaxSpans = 1u << 20;

  explicit Tracer(size_t max_spans = kDefaultMaxSpans);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// \brief Process-unique id of this tracer (the request's trace id).
  uint64_t trace_id() const { return trace_id_; }

  /// \brief Opens a span; returns its id (0 when the span cap is hit —
  /// the caller then treats the span as inactive). Used by Span.
  uint64_t Begin(const char* category, std::string name, uint64_t parent);

  /// \brief Closes a span, attaching its counter bag and notes.
  void End(uint64_t id,
           std::vector<std::pair<const char*, int64_t>> counters,
           std::vector<std::pair<const char*, std::string>> notes);

  /// \brief Records an instant event (zero duration) under `parent`.
  void Instant(const char* category, std::string name, uint64_t parent,
               std::vector<std::pair<const char*, int64_t>> counters = {},
               std::vector<std::pair<const char*, std::string>> notes = {});

  /// \brief The Chrome-trace lane of the calling thread within this
  /// tracer (assigned on first use, cached thread-locally).
  uint32_t LaneForCurrentThread();

  /// \brief Labels a Chrome lane (thread row). Used for imported shard
  /// lanes so the merged export reads "shard0" instead of "lane 7".
  void NameLane(uint32_t lane, std::string name);

  /// \brief Splices foreign spans (a shard's serialized trace payload)
  /// into this tracer: span ids are remapped into this tracer's id
  /// space, roots attach under `attach_under`, timestamps shift by
  /// `offset_ns` (the measured clock offset, so shard spans land on this
  /// process's timeline), and each foreign lane maps to a fresh lane
  /// labeled `lane_name` (suffixed when the payload spans several
  /// threads). `root_notes` is appended to every imported root span
  /// (shard name, clock offset, skew). Open foreign spans stay open.
  /// Returns the number of spans imported.
  size_t ImportSpans(const std::vector<SpanRecord>& foreign,
                     uint64_t attach_under, int64_t offset_ns,
                     const std::string& lane_name,
                     std::vector<std::pair<const char*, std::string>>
                         root_notes = {});

  /// \brief Copy of every recorded span, in Begin order.
  std::vector<SpanRecord> Snapshot() const;

  size_t num_spans() const;
  /// \brief Spans discarded because the cap was reached.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// \brief The EXPLAIN ANALYZE / TRACE view: the span tree rendered one
  /// line per span — `name  <wall time>  counter=… note=…` — indented two
  /// spaces per depth. Spans whose parent is filtered out reattach to
  /// their nearest included ancestor.
  std::string RenderTree(const TreeOptions& options = {}) const;

  /// \brief Chrome trace-event JSON ({"traceEvents": [...]}) for this
  /// tracer alone. Open spans are exported as if they ended now.
  std::string ExportChromeTrace() const;

 private:
  friend std::string ExportChromeTrace(
      const std::vector<std::shared_ptr<const Tracer>>& tracers);

  void AppendChromeEvents(std::string* out, bool* first) const;

  const uint64_t trace_id_;
  const size_t max_spans_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_lane_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<std::pair<uint32_t, std::string>> lane_names_;  // guarded by mu_
};

/// \brief Chrome trace-event JSON merging several tracers onto the shared
/// process timeline; each tracer becomes one Chrome "process" named by
/// its trace id (so a multi-request export shows requests side by side).
std::string ExportChromeTrace(
    const std::vector<std::shared_ptr<const Tracer>>& tracers);

/// \brief The ambient tracing state of a thread: the installed tracer
/// and the innermost open span (the parent for new spans). Captured by
/// TaskGroup::Spawn and re-installed on pool workers.
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t span = 0;
};

/// \brief The calling thread's ambient trace context.
TraceContext CurrentTraceContext();

/// \brief True when the calling thread has a tracer installed. This is
/// the whole cost of a disabled instrumentation point.
bool TracingActive();

/// \brief RAII: installs `tracer` as the calling thread's ambient tracer
/// for the scope (parent span resets to root). Null is allowed and means
/// "tracing off in this scope". Restores the previous state on exit.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  TraceContext prev_;
};

/// \brief RAII: installs a full TraceContext (tracer + parent span).
/// Used by the scheduler to make a pool worker's spans children of the
/// span that was open on the spawning thread.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// \brief RAII span. Construction opens the span under the thread's
/// innermost open span and makes it the new innermost; destruction
/// closes it and restores the parent. When no tracer is installed every
/// method is a no-op (one thread-local read + null check).
class Span {
 public:
  Span(const char* category, const char* name);
  Span(const char* category, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// \brief True when this span is actually recording (a tracer is
  /// installed and the span was not dropped by the cap) — use to skip
  /// computing expensive counter values on the disabled path.
  bool active() const { return tracer_ != nullptr && id_ != 0; }

  /// \brief This span's id within its tracer (0 when inactive). Together
  /// with the tracer's trace_id it forms the `tid=<hex>:<span>` token
  /// propagated to shards.
  uint64_t id() const { return id_; }

  /// \brief Adds `delta` to the span's counter `key` (keys must be
  /// static strings; repeated keys accumulate).
  void Add(const char* key, int64_t delta);

  /// \brief Attaches a string annotation (cache=hit, key=<signature>).
  void Note(const char* key, std::string value);

 private:
  void Open(const char* category, std::string name);

  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
  uint64_t prev_span_ = 0;
  std::vector<std::pair<const char*, int64_t>> counters_;
  std::vector<std::pair<const char*, std::string>> notes_;
};

/// \brief Emits an instant event under the current span (no-op without a
/// tracer). Used for the materialization cache's hit/miss/evict stream.
void Event(const char* category, const char* name);
void Event(const char* category, const char* name,
           std::initializer_list<std::pair<const char*, int64_t>> counters);

/// \brief Since-start rollups of finished spans keyed by
/// "category/name": count, total and max wall time. Feeds the server's
/// STATS command ("top-N slowest operators since start").
class TraceAggregator {
 public:
  struct OpStat {
    std::string op;  ///< "category/name"
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };

  /// \brief Folds every finished, non-instant span of `tracer` in.
  void Merge(const Tracer& tracer);

  /// \brief The `n` ops with the largest total wall time, descending.
  std::vector<OpStat> Top(size_t n) const;

  /// \brief JSON array for STATS:
  /// [{"op":…,"count":…,"total_us":…,"max_us":…,"mean_us":…}, …]
  std::string TopJson(size_t n) const;

 private:
  mutable std::mutex mu_;
  std::vector<OpStat> ops_;  // unsorted; linear scan (few distinct ops)
};

/// \brief Escapes a string for embedding in a JSON string literal.
std::string EscapeJson(const std::string& s);

}  // namespace obs
}  // namespace spindle
