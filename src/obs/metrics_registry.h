/// \file metrics_registry.h
/// \brief Fleet observability: the log-bucketed latency histogram, a
/// registry of named counters/gauges/histograms with Prometheus text
/// exposition, and the scrape parser + exact fleet aggregation used by
/// the coordinator's fleet view.
///
/// The registry does not own any hot-path cells: components keep their
/// existing lock-free atomics and self-register pointers (or snapshot
/// callbacks) under Prometheus family names and label sets. Recording
/// stays wait-free; only `PrometheusText()` walks the registry, which is
/// the standard scrape-time contract.
///
/// Aggregation exactness: every histogram in the fleet shares the same
/// bucket layout (`LatencyHistogram`), so a bucket-wise sum of per-shard
/// scrapes is exactly the histogram of the union of samples — the
/// coordinator's merged fleet series are not approximations.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spindle {
namespace obs {

/// \brief Log-bucketed histogram of microsecond values.
///
/// Buckets are exponential with 4 linear sub-buckets per octave
/// (resolution ~12% everywhere), covering 1 µs .. ~1.2 hours; larger
/// samples clamp into the top bucket. Percentile estimates interpolate
/// linearly within the bucket holding the nearest-rank sample, so the
/// worst-case relative error is bounded by the bucket resolution rather
/// than always landing on the bucket's upper bound.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;                   // 4 sub-buckets
  static constexpr int kOctaves = 32;                  // up to 2^32 µs
  static constexpr int kBuckets = kOctaves << kSubBits;

  /// \brief Records one sample (microseconds). Wait-free.
  void Record(uint64_t us) {
    counts_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev && !max_us_.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return counts_[b].load(std::memory_order_relaxed);
  }

  /// \brief Nearest-rank percentile (q in [0, 100]) in microseconds,
  /// linearly interpolated within the rank's bucket; 0 when empty. Never
  /// exceeds the recorded maximum.
  uint64_t PercentileUs(double q) const;

  /// \brief {"count":n,"mean_us":x,"max_us":n,"p50_us":n,...}
  std::string ToJson() const;

  /// \brief Bucket index of a microsecond value.
  static int BucketOf(uint64_t us);
  /// \brief Inclusive lower bound of a bucket's value range.
  static uint64_t BucketLowerUs(int bucket);
  /// \brief Inclusive upper bound of a bucket's value range.
  static uint64_t BucketUpperUs(int bucket);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// \brief Renders a label set body (no braces): `R"(shard="s0")"`. Pairs
/// are emitted in the given order; values are escaped per the Prometheus
/// text format.
std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels);

/// \brief Registry of named metric families. Registration is mutexed
/// (startup-time); scraping walks the registry under the same mutex.
/// Recording never touches the registry — cells stay wherever the
/// component put them.
///
/// The registrant must keep every registered cell / callback target
/// alive for the registry's lifetime (the registry stores raw pointers).
class MetricsRegistry {
 public:
  /// \brief Registers a monotone counter backed by an atomic cell.
  /// `labels` is a pre-rendered label body ("" for none).
  void AddCounter(const std::string& name, const std::string& help,
                  const std::string& labels,
                  const std::atomic<uint64_t>* cell);
  /// \brief Registers a gauge backed by an atomic cell.
  void AddGauge(const std::string& name, const std::string& help,
                const std::string& labels, const std::atomic<uint64_t>* cell);
  /// \brief Registers a counter whose value is computed at scrape time.
  void AddCounterFn(const std::string& name, const std::string& help,
                    const std::string& labels, std::function<double()> fn);
  /// \brief Registers a gauge whose value is computed at scrape time.
  void AddGaugeFn(const std::string& name, const std::string& help,
                  const std::string& labels, std::function<double()> fn);
  /// \brief Registers a histogram (shared bucket layout; exposed as
  /// cumulative `_bucket{le=}` samples plus `_sum` and `_count`).
  void AddHistogram(const std::string& name, const std::string& help,
                    const std::string& labels, const LatencyHistogram* hist);
  /// \brief Registers a gauge family whose sample set (label body, value)
  /// is only known at scrape time — e.g. one sample per live collection.
  void AddGaugeCallback(
      const std::string& name, const std::string& help,
      std::function<void(std::vector<std::pair<std::string, double>>*)> fn);

  /// \brief Renders every family in Prometheus text exposition format
  /// (one `# HELP`/`# TYPE` pair per family, families in registration
  /// order, histogram buckets cumulative with a closing `+Inf`).
  std::string PrometheusText() const;

 private:
  struct Entry {
    MetricType type = MetricType::kCounter;
    std::string labels;
    const std::atomic<uint64_t>* cell = nullptr;
    std::function<double()> fn;
    const LatencyHistogram* hist = nullptr;
    std::function<void(std::vector<std::pair<std::string, double>>*)> multi;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Entry> entries;
  };

  Family* FamilyOf(const std::string& name, const std::string& help,
                   MetricType type);

  mutable std::mutex mu_;
  std::vector<Family> families_;
};

// ---------------------------------------------------------------------------
// Scrape parsing + fleet aggregation (coordinator fleet view)
// ---------------------------------------------------------------------------

/// \brief One sample line from a scrape: full sample name (may carry a
/// `_bucket`/`_sum`/`_count` suffix), rendered label body, value.
struct PrometheusSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

/// \brief One metric family from a scrape, in document order.
struct PrometheusFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<PrometheusSample> samples;
};

/// \brief Parses Prometheus text exposition format (the subset this
/// registry emits: `# HELP`, `# TYPE`, and sample lines). Samples that
/// precede any TYPE line default to untyped gauges.
Result<std::vector<PrometheusFamily>> ParsePrometheusText(
    const std::string& text);

/// \brief Merges per-shard scrapes into the fleet view. For counter and
/// histogram families the merged series sum sample-wise across shards
/// (histogram buckets are first de-cumulated per shard, summed per `le`,
/// then re-cumulated over the union of bucket bounds — exact because all
/// shards share the bucket layout). Every source series is additionally
/// re-exported with a `shard="<name>"` label so per-shard views survive
/// aggregation. Gauge families are only re-exported per shard (a summed
/// gauge is rarely meaningful; consumers aggregate as they see fit).
std::string AggregateScrapes(
    const std::vector<std::pair<std::string, std::vector<PrometheusFamily>>>&
        shards);

}  // namespace obs
}  // namespace spindle
