/// \file status.h
/// \brief Error handling primitives: Status and Result<T>.
///
/// Spindle follows the RocksDB/Arrow convention: functions that can fail
/// return a Status (or a Result<T> carrying either a value or a Status).
/// No exceptions cross module boundaries.

#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace spindle {

/// \brief Machine-readable error category carried by every Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeMismatch,
  kParseError,
  kNotImplemented,
  kInternal,
  /// The request's deadline passed before evaluation finished; the query
  /// was cooperatively cancelled at a morsel/operator boundary.
  kDeadlineExceeded,
  /// The request was cancelled by its client (not by a deadline).
  kCancelled,
  /// Admission control shed the request: the in-flight limit and the
  /// FIFO queue cap were both reached. Retrying later may succeed.
  kOverloaded,
  /// A backend needed to answer is unreachable or failed to respond in
  /// time (e.g. a shard missed its deadline under the coordinator's
  /// fail-on-partial policy). Retrying later may succeed.
  kUnavailable,
};

/// \brief Returns a stable, human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Inverse of StatusCodeName (exact match). Returns false and
/// leaves `out` untouched for unknown names — used by wire clients that
/// re-hydrate a Status from "ERR <CodeName> <message>" lines.
bool StatusCodeFromName(const std::string& name, StatusCode* out);

/// \brief The outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and cheap enough
/// in the error case (one string).
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  /// \brief Creates a Status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// \brief Returns the contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Moves the contained value out; must only be called when ok().
  T MoveValueOrDie() {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Returns the value if ok(), otherwise the provided default.
  T ValueOr(T def) const {
    return ok() ? *value_ : std::move(def);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// Propagates a non-OK Status to the caller.
#define SPINDLE_RETURN_IF_ERROR(expr)                    \
  do {                                                   \
    ::spindle::Status _spindle_status = (expr);          \
    if (!_spindle_status.ok()) return _spindle_status;   \
  } while (false)

#define SPINDLE_CONCAT_IMPL(a, b) a##b
#define SPINDLE_CONCAT(a, b) SPINDLE_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error propagates the Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define SPINDLE_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SPINDLE_ASSIGN_OR_RETURN_IMPL(SPINDLE_CONCAT(_spindle_res_, __LINE__),   \
                                lhs, rexpr)

#define SPINDLE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace spindle
