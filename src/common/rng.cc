#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace spindle {

double Rng::NextGaussian() {
  // Box-Muller transform; discards the second value for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), cdf_(n) {
  double sum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& v : cdf_) v *= inv;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace spindle
