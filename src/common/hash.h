/// \file hash.h
/// \brief Hashing helpers shared by the join/aggregate kernels.

#pragma once

#include <cstdint>
#include <string_view>

namespace spindle {

/// \brief FNV-1a 64-bit hash of a byte string.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Finalizing mixer (from MurmurHash3) for integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace spindle
