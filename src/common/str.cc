#include "common/str.h"

#include <cctype>
#include <cstdio>

namespace spindle {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    out.push_back(c < 0x80 ? static_cast<char>(std::tolower(c))
                           : static_cast<char>(c));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string QuoteString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (!std::isdigit(c)) return false;
  }
  return true;
}

}  // namespace spindle
