#include "common/status.h"

namespace spindle {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeFromName(const std::string& name, StatusCode* out) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,  StatusCode::kTypeMismatch,
      StatusCode::kParseError,  StatusCode::kNotImplemented,
      StatusCode::kInternal,    StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,   StatusCode::kOverloaded,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace spindle
