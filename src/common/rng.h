/// \file rng.h
/// \brief Deterministic pseudo-random number generation and the samplers
/// used by the synthetic workload generators.
///
/// All Spindle generators take explicit 64-bit seeds so every test and
/// benchmark run is reproducible bit-for-bit.

#pragma once

#include <cstdint>
#include <vector>

namespace spindle {

/// \brief SplitMix64: used to seed Xoshiro and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Decorrelated child seed for stream `stream` of a root seed.
///
/// Workload generators draw one independent stream per entity (document,
/// product, lot, ...) instead of one long sequence, so generation can be
/// morsel-parallel while staying bit-identical for any thread count: the
/// bits of entity i depend only on (root_seed, i), never on which worker
/// generated entity i-1. Streams are mixed through SplitMix64 twice so
/// adjacent stream ids land far apart in state space.
inline uint64_t DeriveStreamSeed(uint64_t root_seed, uint64_t stream) {
  uint64_t state = root_seed;
  uint64_t mixed = SplitMix64(state);
  state = mixed ^ (stream + 0x9e3779b97f4a7c15ULL);
  mixed = SplitMix64(state);
  return SplitMix64(state) ^ mixed;
}

/// \brief xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  /// \brief The seed this Rng was constructed with (the root of Split).
  uint64_t seed() const { return seed_; }

  /// \brief A child Rng for stream `stream`. Depends only on the
  /// constructor seed, not on how many values this Rng has produced, so
  /// splitting is safe from any thread at any time.
  Rng Split(uint64_t stream) const {
    return Rng(DeriveStreamSeed(seed_, stream));
  }

  /// \brief Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// \brief Standard normal via Box-Muller (one value per call).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t seed_;
  uint64_t s_[4];
};

/// \brief Samples ranks 1..n from a Zipf distribution with exponent s.
///
/// Uses a precomputed CDF with binary search; construction is O(n),
/// sampling O(log n). Deterministic given the Rng.
class ZipfSampler {
 public:
  /// \param n number of distinct items (ranks 1..n)
  /// \param s Zipf exponent (typical natural text: ~1.0)
  ZipfSampler(uint64_t n, double s);

  /// \brief Returns a rank in [1, n]; low ranks are most probable.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace spindle
