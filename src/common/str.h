/// \file str.h
/// \brief Small string utilities used across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spindle {

/// \brief ASCII-only lowercasing; bytes >= 0x80 pass through unchanged.
std::string ToLowerAscii(std::string_view s);

/// \brief Splits on a single character; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// \brief Formats a double with up to `precision` significant digits,
/// trimming trailing zeros ("1.5", "0.25", "3").
std::string FormatDouble(double v, int precision = 12);

/// \brief Escapes a string for embedding in double quotes.
std::string QuoteString(std::string_view s);

/// \brief True if `s` consists only of ASCII digits (and is non-empty).
bool IsDigits(std::string_view s);

}  // namespace spindle
