/// \file parser.h
/// \brief Recursive-descent parser for SpinQL.
///
/// Grammar (EBNF-ish; keywords are uppercase):
///
///   program   = { IDENT "=" expr ";" } ;
///   expr      = op | IDENT ;
///   op        = "SELECT" "[" pred "]" "(" expr ")"
///             | "PROJECT" [assumption] "[" [items] "]" "(" expr ")"
///             | "JOIN" "INDEPENDENT" "[" eq {"," eq} "]"
///                      "(" expr "," expr ")"
///             | "UNITE" assumption "(" expr {"," expr} ")"
///             | "WEIGHT" "[" number "]" "(" expr ")"
///             | "COMPLEMENT" "(" expr ")"
///             | "BAYES" "[" [colref {"," colref}] "]" "(" expr ")"
///             | "TOKENIZE" "[" colref ["," STRING] "]" "(" expr ")"
///             | "RANK" model ["[" [param {"," param}] "]"]
///                      "(" expr "," expr ")"
///             | "TOPK" "[" integer "]" "(" expr ")" ;
///   model     = "BM25" | "TFIDF" | "LMD" | "LMJM" ;
///   param     = IDENT "=" (number | STRING) ;
///   assumption= "INDEPENDENT" | "DISJOINT" | "MAX" | "ALL" ;
///   eq        = colref "=" colref ;           (left side, right side)
///   items     = item {"," item} ; item = scalar ["AS" IDENT] ;
///   pred      = andp {"OR" andp} ; andp = notp {"AND" notp} ;
///   notp      = "NOT" notp | "(" pred ")" | cmp ;
///   cmp       = scalar [("="|"!="|"<"|"<="|">"|">=") scalar] ;
///   scalar    = term {("+"|"-") term} ; term = factor {("*"|"/") factor} ;
///   factor    = colref | "P" | number | STRING
///             | IDENT "(" [scalar {"," scalar}] ")" | "(" scalar ")" ;
///   colref    = "$" integer ;                 (1-based, excludes p)
///
/// `P` denotes the implicit probability column. `--` starts a comment.

#pragma once

#include "common/status.h"
#include "spinql/ast.h"

namespace spindle {
namespace spinql {

/// \brief Parses a single SpinQL expression (no trailing `;`).
Result<NodePtr> ParseExpression(const std::string& source);

}  // namespace spinql
}  // namespace spindle
