/// \file ast.h
/// \brief SpinQL abstract syntax: the operator tree of the probabilistic
/// relational algebra, plus the IR extensions (TOKENIZE, RANK, TOPK).
///
/// Scalar expressions inside SELECT predicates and PROJECT items reuse the
/// engine's Expr tree: `$N` becomes a positional column reference (0-based
/// internally), the keyword `P` becomes a named reference to the implicit
/// probability column, and every operator (=, AND, +, stem(), ...) is a
/// registry function call — which keeps canonical printing parseable.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/expr.h"
#include "engine/ops.h"
#include "ir/searcher.h"
#include "pra/prob_relation.h"
#include "text/analyzer.h"

namespace spindle {
namespace spinql {

/// \brief SpinQL operator kinds.
enum class NodeKind {
  kRelRef,      ///< reference to a base table or earlier binding
  kSelect,      ///< SELECT [pred] (in)
  kProject,     ///< PROJECT assumption? [items] (in)
  kJoin,        ///< JOIN INDEPENDENT [$i=$j,...] (l, r)
  kUnite,       ///< UNITE assumption (in, in, ...)
  kWeight,      ///< WEIGHT [w] (in)
  kComplement,  ///< COMPLEMENT (in)
  kBayes,       ///< BAYES [$i,...] (in)
  kTokenize,    ///< TOKENIZE [$i, "analyzer"?] (in)
  kRank,        ///< RANK MODEL [params] (docs, query)
  kTopK,        ///< TOPK [k] (in)
};

/// \brief Lower-case operator name ("select", "rank", ...) — the span
/// name of the operator's node in a query trace.
const char* NodeKindName(NodeKind kind);

/// \brief Ranking configuration of a RANK node.
struct RankSpec {
  RankModel model = RankModel::kBm25;
  Bm25Params bm25;
  DirichletParams dirichlet;
  JelinekMercerParams jm;
  AnalyzerOptions analyzer;  ///< default: sb-english

  std::string ToString() const;
};

class Node;
using NodePtr = std::shared_ptr<const Node>;

/// \brief One SpinQL operator. Immutable; build via the factory methods.
class Node {
 public:
  static NodePtr RelRef(std::string name);
  static NodePtr Select(ExprPtr predicate, NodePtr in);
  static NodePtr Project(Assumption assumption, std::vector<ExprPtr> items,
                         std::vector<std::string> names, NodePtr in);
  static NodePtr Join(std::vector<JoinKey> keys, NodePtr left, NodePtr right);
  static NodePtr Unite(Assumption assumption, std::vector<NodePtr> inputs);
  static NodePtr Weight(double w, NodePtr in);
  static NodePtr Complement(NodePtr in);
  static NodePtr Bayes(std::vector<size_t> group_cols, NodePtr in);
  static NodePtr Tokenize(size_t column, AnalyzerOptions analyzer,
                          NodePtr in);
  static NodePtr Rank(RankSpec spec, NodePtr docs, NodePtr query);
  static NodePtr TopK(size_t k, NodePtr in);

  NodeKind kind() const { return kind_; }
  const std::string& rel_name() const { return rel_name_; }
  const ExprPtr& predicate() const { return predicate_; }
  Assumption assumption() const { return assumption_; }
  const std::vector<ExprPtr>& items() const { return items_; }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<JoinKey>& keys() const { return keys_; }
  double weight() const { return weight_; }
  const std::vector<size_t>& group_cols() const { return group_cols_; }
  size_t tokenize_col() const { return tokenize_col_; }
  const AnalyzerOptions& tokenize_analyzer() const {
    return tokenize_analyzer_;
  }
  const RankSpec& rank() const { return rank_; }
  size_t k() const { return k_; }
  const std::vector<NodePtr>& inputs() const { return inputs_; }

  /// \brief Canonical SpinQL text; parsing it back yields an equal tree.
  std::string ToString() const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string rel_name_;
  ExprPtr predicate_;
  Assumption assumption_ = Assumption::kAll;
  std::vector<ExprPtr> items_;
  std::vector<std::string> names_;
  std::vector<JoinKey> keys_;
  double weight_ = 1.0;
  std::vector<size_t> group_cols_;
  size_t tokenize_col_ = 0;
  AnalyzerOptions tokenize_analyzer_;
  RankSpec rank_;
  size_t k_ = 0;
  std::vector<NodePtr> inputs_;
};

/// \brief A parsed SpinQL program: an ordered list of `name = expr;`
/// statements. Later statements may reference earlier bindings by name.
class Program {
 public:
  /// \brief Parses SpinQL source (see parser.h for the grammar).
  static Result<Program> Parse(const std::string& source);

  const std::vector<std::pair<std::string, NodePtr>>& statements() const {
    return statements_;
  }

  /// \brief The expression bound to `name`, or NotFound.
  Result<NodePtr> Lookup(const std::string& name) const;

  bool HasBinding(const std::string& name) const;

  /// \brief The name bound by the final statement (the program output).
  const std::string& output() const { return statements_.back().first; }

  /// \brief Canonical source (one statement per line).
  std::string ToString() const;

  /// \brief Appends a statement (used by the strategy compiler).
  Status Append(std::string name, NodePtr node);

 private:
  std::vector<std::pair<std::string, NodePtr>> statements_;
};

}  // namespace spinql
}  // namespace spindle
