#include "spinql/parser.h"

#include <cmath>
#include <set>

#include "common/str.h"
#include "spinql/lexer.h"

namespace spindle {
namespace spinql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "SELECT", "PROJECT", "JOIN",  "UNITE",       "WEIGHT", "COMPLEMENT",
      "BAYES",  "TOKENIZE", "RANK", "TOPK",        "AND",    "OR",
      "NOT",    "AS",       "INDEPENDENT", "DISJOINT", "MAX", "ALL",
      "BM25",   "TFIDF",    "LMD",  "LMJM"};
  return *kw;
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!At(TokKind::kEnd)) {
      SPINDLE_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kEquals, "'='"));
      SPINDLE_ASSIGN_OR_RETURN(NodePtr node, ParseExpr());
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      SPINDLE_RETURN_IF_ERROR(program.Append(std::move(name),
                                             std::move(node)));
    }
    if (program.statements().empty()) {
      return Status::ParseError("empty SpinQL program");
    }
    return program;
  }

  Result<NodePtr> ParseSingleExpr() {
    SPINDLE_ASSIGN_OR_RETURN(NodePtr node, ParseExpr());
    if (!At(TokKind::kEnd)) {
      return Error("trailing input after expression");
    }
    return node;
  }

 private:
  const Tok& Cur() const { return toks_[pos_]; }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtIdent(const char* text) const {
    return Cur().kind == TokKind::kIdent && Cur().text == text;
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) pos_++;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Cur().line) + ":" +
                              std::to_string(Cur().col) + ": " + msg);
  }

  Status Expect(TokKind k, const char* what) {
    if (!At(k)) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (!At(TokKind::kIdent)) return Error("expected identifier");
    std::string text = Cur().text;
    Advance();
    return text;
  }

  Result<double> ExpectNumber() {
    if (!At(TokKind::kInt) && !At(TokKind::kFloat)) {
      return Error("expected number");
    }
    double v = Cur().number;
    Advance();
    return v;
  }

  Result<size_t> ExpectColRef() {
    if (!At(TokKind::kDollar)) return Error("expected $N column reference");
    double v = Cur().number;
    if (v < 1) return Error("column references are 1-based");
    Advance();
    return static_cast<size_t>(v) - 1;
  }

  Result<Assumption> ParseAssumption() {
    if (AtIdent("INDEPENDENT")) {
      Advance();
      return Assumption::kIndependent;
    }
    if (AtIdent("DISJOINT")) {
      Advance();
      return Assumption::kDisjoint;
    }
    if (AtIdent("MAX")) {
      Advance();
      return Assumption::kMax;
    }
    if (AtIdent("ALL")) {
      Advance();
      return Assumption::kAll;
    }
    return Error("expected assumption (INDEPENDENT, DISJOINT, MAX or ALL)");
  }

  bool AtAssumption() const {
    return AtIdent("INDEPENDENT") || AtIdent("DISJOINT") || AtIdent("MAX") ||
           AtIdent("ALL");
  }

  Result<NodePtr> ParseExpr() {
    if (!At(TokKind::kIdent)) {
      return Error("expected SpinQL operator or relation name");
    }
    const std::string& word = Cur().text;
    if (word == "SELECT") return ParseSelect();
    if (word == "PROJECT") return ParseProject();
    if (word == "JOIN") return ParseJoin();
    if (word == "UNITE") return ParseUnite();
    if (word == "WEIGHT") return ParseWeight();
    if (word == "COMPLEMENT") return ParseComplement();
    if (word == "BAYES") return ParseBayes();
    if (word == "TOKENIZE") return ParseTokenize();
    if (word == "RANK") return ParseRank();
    if (word == "TOPK") return ParseTopK();
    if (Keywords().count(word)) {
      return Error("keyword '" + word + "' cannot be used here");
    }
    std::string name = word;
    Advance();
    return Node::RelRef(std::move(name));
  }

  Result<NodePtr> ParseParenInput() {
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseExpr());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return in;
  }

  Result<NodePtr> ParseSelect() {
    Advance();  // SELECT
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr pred, ParsePredicate());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Select(std::move(pred), std::move(in));
  }

  Result<NodePtr> ParseProject() {
    Advance();  // PROJECT
    Assumption assumption = Assumption::kAll;
    if (AtAssumption()) {
      SPINDLE_ASSIGN_OR_RETURN(assumption, ParseAssumption());
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    std::vector<ExprPtr> items;
    std::vector<std::string> names;
    if (!At(TokKind::kRBracket)) {
      while (true) {
        SPINDLE_ASSIGN_OR_RETURN(ExprPtr item, ParseScalar());
        std::string name;
        if (AtIdent("AS")) {
          Advance();
          SPINDLE_ASSIGN_OR_RETURN(name, ExpectIdent());
        }
        items.push_back(std::move(item));
        names.push_back(std::move(name));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Project(assumption, std::move(items), std::move(names),
                         std::move(in));
  }

  Result<NodePtr> ParseJoin() {
    Advance();  // JOIN
    if (!AtIdent("INDEPENDENT")) {
      return Error("only JOIN INDEPENDENT is defined");
    }
    Advance();
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    std::vector<JoinKey> keys;
    while (true) {
      SPINDLE_ASSIGN_OR_RETURN(size_t l, ExpectColRef());
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kEquals, "'='"));
      SPINDLE_ASSIGN_OR_RETURN(size_t r, ExpectColRef());
      keys.push_back(JoinKey{l, r});
      if (!At(TokKind::kComma)) break;
      Advance();
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr left, ParseExpr());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr right, ParseExpr());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return Node::Join(std::move(keys), std::move(left), std::move(right));
  }

  Result<NodePtr> ParseUnite() {
    Advance();  // UNITE
    SPINDLE_ASSIGN_OR_RETURN(Assumption assumption, ParseAssumption());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    std::vector<NodePtr> inputs;
    while (true) {
      SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseExpr());
      inputs.push_back(std::move(in));
      if (!At(TokKind::kComma)) break;
      Advance();
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    if (inputs.size() < 2) {
      return Error("UNITE needs at least two inputs");
    }
    return Node::Unite(assumption, std::move(inputs));
  }

  Result<NodePtr> ParseWeight() {
    Advance();  // WEIGHT
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    SPINDLE_ASSIGN_OR_RETURN(double w, ExpectNumber());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Weight(w, std::move(in));
  }

  Result<NodePtr> ParseComplement() {
    Advance();  // COMPLEMENT
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Complement(std::move(in));
  }

  Result<NodePtr> ParseBayes() {
    Advance();  // BAYES
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    std::vector<size_t> cols;
    if (!At(TokKind::kRBracket)) {
      while (true) {
        SPINDLE_ASSIGN_OR_RETURN(size_t c, ExpectColRef());
        cols.push_back(c);
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Bayes(std::move(cols), std::move(in));
  }

  Result<NodePtr> ParseTokenize() {
    Advance();  // TOKENIZE
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    SPINDLE_ASSIGN_OR_RETURN(size_t col, ExpectColRef());
    AnalyzerOptions analyzer;
    analyzer.stemmer = "none";
    if (At(TokKind::kComma)) {
      Advance();
      if (!At(TokKind::kString)) return Error("expected analyzer string");
      analyzer.stemmer = Cur().text;
      Advance();
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    return Node::Tokenize(col, std::move(analyzer), std::move(in));
  }

  Result<NodePtr> ParseRank() {
    Advance();  // RANK
    RankSpec spec;
    if (AtIdent("BM25")) {
      spec.model = RankModel::kBm25;
    } else if (AtIdent("TFIDF")) {
      spec.model = RankModel::kTfIdf;
    } else if (AtIdent("LMD")) {
      spec.model = RankModel::kLmDirichlet;
    } else if (AtIdent("LMJM")) {
      spec.model = RankModel::kLmJelinekMercer;
    } else {
      return Error("expected ranking model (BM25, TFIDF, LMD or LMJM)");
    }
    Advance();
    if (At(TokKind::kLBracket)) {
      Advance();
      while (!At(TokKind::kRBracket)) {
        SPINDLE_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kEquals, "'='"));
        if (key == "analyzer") {
          if (!At(TokKind::kString)) {
            return Error("analyzer parameter expects a string");
          }
          spec.analyzer.stemmer = Cur().text;
          Advance();
        } else if (key == "stopwords") {
          SPINDLE_ASSIGN_OR_RETURN(double v, ExpectNumber());
          spec.analyzer.remove_stopwords = v != 0;
        } else if (key == "k1") {
          SPINDLE_ASSIGN_OR_RETURN(spec.bm25.k1, ExpectNumber());
        } else if (key == "b") {
          SPINDLE_ASSIGN_OR_RETURN(spec.bm25.b, ExpectNumber());
        } else if (key == "mu") {
          SPINDLE_ASSIGN_OR_RETURN(spec.dirichlet.mu, ExpectNumber());
        } else if (key == "lambda") {
          SPINDLE_ASSIGN_OR_RETURN(spec.jm.lambda, ExpectNumber());
        } else {
          return Error("unknown RANK parameter '" + key + "'");
        }
        if (At(TokKind::kComma)) Advance();
      }
      Advance();  // ]
    }
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr docs, ParseExpr());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr query, ParseExpr());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return Node::Rank(std::move(spec), std::move(docs), std::move(query));
  }

  Result<NodePtr> ParseTopK() {
    Advance();  // TOPK
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLBracket, "'['"));
    SPINDLE_ASSIGN_OR_RETURN(double k, ExpectNumber());
    SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
    SPINDLE_ASSIGN_OR_RETURN(NodePtr in, ParseParenInput());
    if (k < 0 || k != std::floor(k)) {
      return Error("TOPK expects a non-negative integer");
    }
    return Node::TopK(static_cast<size_t>(k), std::move(in));
  }

  // --- predicates and scalars -------------------------------------------

  Result<ExprPtr> ParsePredicate() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AtIdent("OR") || AtIdent("or")) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AtIdent("AND") || AtIdent("and")) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AtIdent("NOT") || AtIdent("not")) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Not(std::move(inner));
    }
    if (At(TokKind::kLParen)) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseScalar());
    switch (Cur().kind) {
      case TokKind::kEquals:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Eq(std::move(lhs), std::move(rhs));
        }
      case TokKind::kNotEquals:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Ne(std::move(lhs), std::move(rhs));
        }
      case TokKind::kLess:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Lt(std::move(lhs), std::move(rhs));
        }
      case TokKind::kLessEq:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Le(std::move(lhs), std::move(rhs));
        }
      case TokKind::kGreater:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Gt(std::move(lhs), std::move(rhs));
        }
      case TokKind::kGreaterEq:
        Advance();
        {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseScalar());
          return Expr::Ge(std::move(lhs), std::move(rhs));
        }
      default:
        return lhs;  // bare boolean scalar (e.g. stop_en($1))
    }
  }

  Result<ExprPtr> ParseScalar() {
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      bool plus = At(TokKind::kPlus);
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      lhs = plus ? Expr::Add(std::move(lhs), std::move(rhs))
                 : Expr::Sub(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseTerm() {
    SPINDLE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    while (At(TokKind::kStar) || At(TokKind::kSlash)) {
      bool mul = At(TokKind::kStar);
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
      lhs = mul ? Expr::Mul(std::move(lhs), std::move(rhs))
                : Expr::Div(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseFactor() {
    if (At(TokKind::kDollar)) {
      SPINDLE_ASSIGN_OR_RETURN(size_t c, ExpectColRef());
      return Expr::Column(c);
    }
    if (At(TokKind::kMinus)) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr inner, ParseFactor());
      return Expr::Call("neg", {std::move(inner)});
    }
    if (At(TokKind::kInt)) {
      double v = Cur().number;
      Advance();
      return Expr::LitInt(static_cast<int64_t>(v));
    }
    if (At(TokKind::kFloat)) {
      double v = Cur().number;
      Advance();
      return Expr::LitFloat(v);
    }
    if (At(TokKind::kString)) {
      std::string s = Cur().text;
      Advance();
      return Expr::LitString(std::move(s));
    }
    if (At(TokKind::kLParen)) {
      Advance();
      SPINDLE_ASSIGN_OR_RETURN(ExprPtr inner, ParseScalar());
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    if (At(TokKind::kIdent)) {
      std::string name = Cur().text;
      if (name == "P" || name == "p") {
        Advance();
        return Expr::ColumnNamed("p");
      }
      if (Keywords().count(name)) {
        return Error("keyword '" + name + "' cannot appear in a scalar");
      }
      Advance();
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kLParen,
                                     "'(' (function call)"));
      std::vector<ExprPtr> args;
      if (!At(TokKind::kRParen)) {
        while (true) {
          SPINDLE_ASSIGN_OR_RETURN(ExprPtr arg, ParseScalar());
          args.push_back(std::move(arg));
          if (!At(TokKind::kComma)) break;
          Advance();
        }
      }
      SPINDLE_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return Expr::Call(std::move(name), std::move(args));
    }
    return Error("expected scalar expression");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> ParseExpression(const std::string& source) {
  SPINDLE_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(source));
  Parser parser(std::move(toks));
  return parser.ParseSingleExpr();
}

Result<Program> Program::Parse(const std::string& source) {
  SPINDLE_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(source));
  Parser parser(std::move(toks));
  return parser.ParseProgram();
}

}  // namespace spinql
}  // namespace spindle
