#include "spinql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace spindle {
namespace spinql {

namespace {

Status LexError(size_t line, size_t col, const std::string& msg) {
  return Status::ParseError("line " + std::to_string(line) + ":" +
                            std::to_string(col) + ": " + msg);
}

/// Parses a numeric literal without throwing: std::stod raises
/// std::out_of_range on inputs like "1e999" and malformed SpinQL must
/// surface as Status::ParseError, never as an exception escaping the
/// service (see docs/serving.md). Overflow to ±inf is reported as false.
bool ParseNumber(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (errno == ERANGE && !std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

Result<std::vector<Tok>> Lex(const std::string& source) {
  std::vector<Tok> toks;
  size_t i = 0, line = 1, col = 1;
  const size_t n = source.size();

  auto advance = [&](size_t by) {
    for (size_t k = 0; k < by; ++k) {
      if (source[i] == '\n') {
        line++;
        col = 1;
      } else {
        col++;
      }
      i++;
    }
  };

  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comments: -- ... \n
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }
    Tok tok;
    tok.line = line;
    tok.col = col;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        advance(1);
      }
      tok.kind = TokKind::kIdent;
      tok.text = source.substr(start, i - start);
      toks.push_back(std::move(tok));
      continue;
    }
    if (c == '$') {
      advance(1);
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      if (start == i) {
        return LexError(tok.line, tok.col, "expected digits after '$'");
      }
      tok.kind = TokKind::kDollar;
      if (!ParseNumber(source.substr(start, i - start), &tok.number)) {
        return LexError(tok.line, tok.col,
                        "attribute reference out of range");
      }
      toks.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_float = true;
        advance(1);
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t save = i;
        advance(1);
        if (i < n && (source[i] == '+' || source[i] == '-')) advance(1);
        if (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          is_float = true;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(source[i]))) {
            advance(1);
          }
        } else {
          // not an exponent, restore (cannot move backwards with advance,
          // so re-lex from the saved offset)
          i = save;
        }
      }
      tok.kind = is_float ? TokKind::kFloat : TokKind::kInt;
      if (!ParseNumber(source.substr(start, i - start), &tok.number)) {
        return LexError(tok.line, tok.col, "numeric literal out of range");
      }
      toks.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string out;
      bool closed = false;
      while (i < n) {
        char d = source[i];
        if (d == '\\' && i + 1 < n) {
          out.push_back(source[i + 1]);
          advance(2);
          continue;
        }
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        out.push_back(d);
        advance(1);
      }
      if (!closed) {
        return LexError(tok.line, tok.col, "unterminated string literal");
      }
      tok.kind = TokKind::kString;
      tok.text = std::move(out);
      toks.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '=':
        tok.kind = TokKind::kEquals;
        advance(1);
        break;
      case '!':
        if (!two('=')) {
          return LexError(tok.line, tok.col, "expected '=' after '!'");
        }
        tok.kind = TokKind::kNotEquals;
        advance(2);
        break;
      case '<':
        if (two('=')) {
          tok.kind = TokKind::kLessEq;
          advance(2);
        } else if (two('>')) {
          tok.kind = TokKind::kNotEquals;
          advance(2);
        } else {
          tok.kind = TokKind::kLess;
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          tok.kind = TokKind::kGreaterEq;
          advance(2);
        } else {
          tok.kind = TokKind::kGreater;
          advance(1);
        }
        break;
      case '+':
        tok.kind = TokKind::kPlus;
        advance(1);
        break;
      case '-':
        tok.kind = TokKind::kMinus;
        advance(1);
        break;
      case '*':
        tok.kind = TokKind::kStar;
        advance(1);
        break;
      case '/':
        tok.kind = TokKind::kSlash;
        advance(1);
        break;
      case ',':
        tok.kind = TokKind::kComma;
        advance(1);
        break;
      case ';':
        tok.kind = TokKind::kSemicolon;
        advance(1);
        break;
      case '(':
        tok.kind = TokKind::kLParen;
        advance(1);
        break;
      case ')':
        tok.kind = TokKind::kRParen;
        advance(1);
        break;
      case '[':
        tok.kind = TokKind::kLBracket;
        advance(1);
        break;
      case ']':
        tok.kind = TokKind::kRBracket;
        advance(1);
        break;
      default:
        return LexError(tok.line, tok.col,
                        std::string("unexpected character '") + c + "'");
    }
    toks.push_back(std::move(tok));
  }
  Tok end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.col = col;
  toks.push_back(std::move(end));
  return toks;
}

}  // namespace spinql
}  // namespace spindle
