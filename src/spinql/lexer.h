/// \file lexer.h
/// \brief Tokenizer for SpinQL, the probabilistic-relational-algebra DSL
/// of paper §2.3.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace spindle {
namespace spinql {

/// \brief Lexical token kinds.
enum class TokKind {
  kIdent,     ///< bare identifiers, including operator keywords
  kDollar,    ///< positional attribute reference $N (value in `number`)
  kString,    ///< "double quoted", with \" and \\ escapes
  kInt,       ///< integer literal
  kFloat,     ///< floating literal
  kEquals,    ///< =
  kNotEquals, ///< !=
  kLess,      ///< <
  kLessEq,    ///< <=
  kGreater,   ///< >
  kGreaterEq, ///< >=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kComma,
  kSemicolon,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kEnd,
};

/// \brief One token with source position (for error messages).
struct Tok {
  TokKind kind;
  std::string text;   ///< identifier or string contents
  double number = 0;  ///< numeric value for kInt/kFloat/kDollar
  size_t line = 1;
  size_t col = 1;
};

/// \brief Tokenizes a SpinQL source string. `--` starts a line comment.
Result<std::vector<Tok>> Lex(const std::string& source);

}  // namespace spinql
}  // namespace spindle
