#include "spinql/sql_emitter.h"

#include "common/str.h"

namespace spindle {
namespace spinql {

namespace {

/// Scalar expression -> SQL, with positional refs rendered as
/// `<alias>.c<N>` and P as `<alias>.p`.
Result<std::string> ExprSql(const ExprPtr& e, const std::string& alias) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      return alias + ".c" + std::to_string(e->column_index() + 1);
    case ExprKind::kNamedColumnRef:
      if (e->column_name() == "p") return alias + ".p";
      return alias + "." + e->column_name();
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (ValueType(v) == DataType::kString) {
        // SQL string literal with doubled quotes.
        std::string out = "'";
        for (char c : std::get<std::string>(v)) {
          if (c == '\'') out += "''";
          else out.push_back(c);
        }
        out += "'";
        return out;
      }
      return ValueToString(v);
    }
    case ExprKind::kCall: {
      const std::string& fn = e->function_name();
      auto bin = [&](const char* op) -> Result<std::string> {
        SPINDLE_ASSIGN_OR_RETURN(std::string a, ExprSql(e->args()[0], alias));
        SPINDLE_ASSIGN_OR_RETURN(std::string b, ExprSql(e->args()[1], alias));
        return "(" + a + " " + op + " " + b + ")";
      };
      if (fn == "eq") return bin("=");
      if (fn == "ne") return bin("<>");
      if (fn == "lt") return bin("<");
      if (fn == "le") return bin("<=");
      if (fn == "gt") return bin(">");
      if (fn == "ge") return bin(">=");
      if (fn == "and") return bin("AND");
      if (fn == "or") return bin("OR");
      if (fn == "add") return bin("+");
      if (fn == "sub") return bin("-");
      if (fn == "mul") return bin("*");
      if (fn == "div") return bin("/");
      if (fn == "not") {
        SPINDLE_ASSIGN_OR_RETURN(std::string a, ExprSql(e->args()[0], alias));
        return "(NOT " + a + ")";
      }
      if (fn == "neg") {
        SPINDLE_ASSIGN_OR_RETURN(std::string a, ExprSql(e->args()[0], alias));
        return "(-" + a + ")";
      }
      // Every other function (stem, lcase, log, ...) emits as a call —
      // these are the MonetDB UDFs of the paper.
      std::string out = fn + "(";
      for (size_t i = 0; i < e->args().size(); ++i) {
        if (i > 0) out += ", ";
        SPINDLE_ASSIGN_OR_RETURN(std::string a, ExprSql(e->args()[i], alias));
        out += a;
      }
      out += ")";
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

/// "t.c1 AS c1, t.c2 AS c2, ..." for `arity` columns.
std::string PassThroughColumns(const std::string& alias, size_t arity,
                               size_t first_output = 1) {
  std::string out;
  for (size_t i = 0; i < arity; ++i) {
    if (i > 0) out += ", ";
    out += alias + ".c" + std::to_string(i + 1) + " AS c" +
           std::to_string(first_output + i);
  }
  return out;
}

std::string AggSql(Assumption assumption, const std::string& alias) {
  switch (assumption) {
    case Assumption::kIndependent:
      return "1 - EXP(SUM(LN(1 - " + alias + ".p)))";
    case Assumption::kDisjoint:
      return "SUM(" + alias + ".p)";
    case Assumption::kMax:
      return "MAX(" + alias + ".p)";
    case Assumption::kAll:
      return alias + ".p";
  }
  return alias + ".p";
}

class Emitter {
 public:
  Emitter(const Program& program, const Catalog& catalog)
      : program_(program), catalog_(catalog) {}

  Result<size_t> Arity(const NodePtr& node) {
    switch (node->kind()) {
      case NodeKind::kRelRef: {
        auto bound = program_.Lookup(node->rel_name());
        if (bound.ok()) return Arity(bound.ValueOrDie());
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel,
                                 catalog_.Get(node->rel_name()));
        size_t n = rel->num_columns();
        if (n > 0 && rel->schema().field(n - 1).name == "p" &&
            rel->schema().field(n - 1).type == DataType::kFloat64) {
          return n - 1;
        }
        return n;
      }
      case NodeKind::kSelect:
      case NodeKind::kWeight:
      case NodeKind::kComplement:
      case NodeKind::kBayes:
      case NodeKind::kTopK:
        return Arity(node->inputs()[0]);
      case NodeKind::kProject:
        return node->items().size();
      case NodeKind::kJoin: {
        SPINDLE_ASSIGN_OR_RETURN(size_t l, Arity(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t r, Arity(node->inputs()[1]));
        return l + r;
      }
      case NodeKind::kUnite:
        return Arity(node->inputs()[0]);
      case NodeKind::kTokenize: {
        SPINDLE_ASSIGN_OR_RETURN(size_t in, Arity(node->inputs()[0]));
        return in + 1;  // - text column + term + pos
      }
      case NodeKind::kRank:
        return 1;  // (id, p)
    }
    return Status::Internal("unreachable node kind");
  }

  Result<std::string> Emit(const NodePtr& node) {
    switch (node->kind()) {
      case NodeKind::kRelRef: {
        auto bound = program_.Lookup(node->rel_name());
        if (bound.ok()) {
          // Bound names are emitted as views by EmitProgramSql; reference
          // them directly.
          return "SELECT * FROM " + node->rel_name();
        }
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel,
                                 catalog_.Get(node->rel_name()));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node));
        std::string out = "SELECT ";
        for (size_t i = 0; i < arity; ++i) {
          if (i > 0) out += ", ";
          out += rel->schema().field(i).name + " AS c" +
                 std::to_string(i + 1);
        }
        if (arity == rel->num_columns()) {
          out += ", 1.0 AS p";  // deterministic table: certain facts
        } else {
          out += ", p";
        }
        out += " FROM " + node->rel_name();
        return out;
      }
      case NodeKind::kSelect: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(std::string pred,
                                 ExprSql(node->predicate(), "t"));
        return "SELECT " + PassThroughColumns("t", arity) +
               ", t.p AS p FROM (" + sub + ") AS t WHERE " + pred;
      }
      case NodeKind::kProject: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        std::string items;
        for (size_t i = 0; i < node->items().size(); ++i) {
          if (i > 0) items += ", ";
          SPINDLE_ASSIGN_OR_RETURN(std::string item,
                                   ExprSql(node->items()[i], "t"));
          items += item + " AS c" + std::to_string(i + 1);
        }
        std::string out = "SELECT " + items + ", " +
                          AggSql(node->assumption(), "t") + " AS p FROM (" +
                          sub + ") AS t";
        if (node->assumption() != Assumption::kAll &&
            !node->items().empty()) {
          out += " GROUP BY ";
          for (size_t i = 0; i < node->items().size(); ++i) {
            if (i > 0) out += ", ";
            SPINDLE_ASSIGN_OR_RETURN(std::string item,
                                     ExprSql(node->items()[i], "t"));
            out += item;
          }
        }
        return out;
      }
      case NodeKind::kJoin: {
        SPINDLE_ASSIGN_OR_RETURN(std::string lsql, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(std::string rsql, Emit(node->inputs()[1]));
        SPINDLE_ASSIGN_OR_RETURN(size_t larity, Arity(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t rarity, Arity(node->inputs()[1]));
        std::string out = "SELECT " + PassThroughColumns("t1", larity);
        if (rarity > 0) {
          out += ", " + PassThroughColumns("t2", rarity, larity + 1);
        }
        out += ", t1.p * t2.p AS p FROM (" + lsql + ") AS t1, (" + rsql +
               ") AS t2 WHERE ";
        for (size_t i = 0; i < node->keys().size(); ++i) {
          if (i > 0) out += " AND ";
          out += "t1.c" + std::to_string(node->keys()[i].left + 1) +
                 " = t2.c" + std::to_string(node->keys()[i].right + 1);
        }
        return out;
      }
      case NodeKind::kUnite: {
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        std::string body;
        for (size_t i = 0; i < node->inputs().size(); ++i) {
          if (i > 0) body += " UNION ALL ";
          SPINDLE_ASSIGN_OR_RETURN(std::string sub,
                                   Emit(node->inputs()[i]));
          body += "(" + sub + ")";
        }
        if (node->assumption() == Assumption::kAll) {
          return "SELECT * FROM (" + body + ") AS t";
        }
        std::string cols = PassThroughColumns("t", arity);
        std::string out = "SELECT " + cols + ", " +
                          AggSql(node->assumption(), "t") + " AS p FROM (" +
                          body + ") AS t";
        if (arity > 0) {
          out += " GROUP BY ";
          for (size_t i = 0; i < arity; ++i) {
            if (i > 0) out += ", ";
            out += "t.c" + std::to_string(i + 1);
          }
        }
        return out;
      }
      case NodeKind::kWeight: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        return "SELECT " + PassThroughColumns("t", arity) + ", t.p * " +
               FormatDouble(node->weight()) + " AS p FROM (" + sub +
               ") AS t";
      }
      case NodeKind::kComplement: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        return "SELECT " + PassThroughColumns("t", arity) +
               ", 1 - t.p AS p FROM (" + sub + ") AS t";
      }
      case NodeKind::kBayes: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        std::string partition;
        if (!node->group_cols().empty()) {
          partition = " PARTITION BY ";
          for (size_t i = 0; i < node->group_cols().size(); ++i) {
            if (i > 0) partition += ", ";
            partition += "t.c" + std::to_string(node->group_cols()[i] + 1);
          }
        }
        return "SELECT " + PassThroughColumns("t", arity) +
               ", t.p / SUM(t.p) OVER (" +
               (partition.empty() ? "" : partition.substr(1)) +
               ") AS p FROM (" + sub + ") AS t";
      }
      case NodeKind::kTokenize: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        SPINDLE_ASSIGN_OR_RETURN(size_t arity, Arity(node->inputs()[0]));
        // Carried columns, then token and pos from the tokenize UDF.
        std::string out = "SELECT ";
        size_t out_idx = 1;
        for (size_t i = 0; i < arity; ++i) {
          if (i == node->tokenize_col()) continue;
          out += "t.c" + std::to_string(i + 1) + " AS c" +
                 std::to_string(out_idx++) + ", ";
        }
        std::string token = "tk.token";
        if (node->tokenize_analyzer().stemmer != "none") {
          token = "stem(lcase(tk.token), '" +
                  node->tokenize_analyzer().stemmer + "')";
        }
        out += token + " AS c" + std::to_string(out_idx++);
        out += ", tk.pos AS c" + std::to_string(out_idx++);
        out += ", t.p AS p FROM (" + sub + ") AS t, LATERAL tokenize(t.c" +
               std::to_string(node->tokenize_col() + 1) + ") AS tk";
        return out;
      }
      case NodeKind::kRank:
        return EmitRank(node);
      case NodeKind::kTopK: {
        SPINDLE_ASSIGN_OR_RETURN(std::string sub, Emit(node->inputs()[0]));
        return "SELECT * FROM (" + sub + ") AS t ORDER BY t.p DESC LIMIT " +
               std::to_string(node->k());
      }
    }
    return Status::Internal("unreachable node kind");
  }

  /// The paper's §2.1 BM25 cascade as a WITH query.
  Result<std::string> EmitRank(const NodePtr& node) {
    const RankSpec& spec = node->rank();
    SPINDLE_ASSIGN_OR_RETURN(std::string docs_sql, Emit(node->inputs()[0]));
    SPINDLE_ASSIGN_OR_RETURN(std::string query_sql,
                             Emit(node->inputs()[1]));
    if (spec.model != RankModel::kBm25) {
      return std::string("-- ") + RankModelName(spec.model) +
             " shares the cascade below with a different weighting\n" +
             "SELECT NULL AS c1, NULL AS p WHERE FALSE";
    }
    const std::string stem_expr =
        spec.analyzer.stemmer == "none"
            ? std::string("lcase(%TOK%)")
            : "stem(lcase(%TOK%), '" + spec.analyzer.stemmer + "')";
    auto stem_of = [&](const std::string& tok) {
      std::string s = stem_expr;
      size_t at = s.find("%TOK%");
      s.replace(at, 5, tok);
      return s;
    };
    std::string k1 = FormatDouble(spec.bm25.k1);
    std::string b = FormatDouble(spec.bm25.b);
    std::string sql;
    sql += "WITH docs AS (" + docs_sql + "),\n";
    sql += "query AS (" + query_sql + "),\n";
    sql += "term_doc AS (SELECT " + stem_of("tk.token") +
           " AS term, d.c1 AS docID, d.p AS dp FROM docs d, LATERAL "
           "tokenize(d.c2) AS tk),\n";
    sql += "doc_len AS (SELECT docID, count(*) AS len FROM term_doc GROUP "
           "BY docID),\n";
    sql += "termdict AS (SELECT row_number() OVER () AS termID, terms.term "
           "FROM (SELECT DISTINCT term FROM term_doc) AS terms),\n";
    sql += "tf AS (SELECT termdict.termID, term_doc.docID, count(*) AS tf "
           "FROM term_doc, termdict WHERE term_doc.term = termdict.term "
           "GROUP BY termdict.termID, term_doc.docID),\n";
    sql += "idf AS (SELECT termID, log(((SELECT count(*) FROM doc_len) - "
           "count(*) + 0.5) / (count(*) + 0.5)) AS idf FROM tf GROUP BY "
           "termID),\n";
    sql += "tf_bm25 AS (SELECT tf.docID, tf.termID, tf.tf / (tf.tf + (" +
           k1 + " * (1 - " + b + " + " + b +
           " * doc_len.len / (SELECT avg(len) FROM doc_len)))) AS tf FROM "
           "tf, doc_len WHERE tf.docID = doc_len.docID),\n";
    sql += "qterms AS (SELECT termdict.termID, q.p AS w FROM query q, "
           "LATERAL tokenize(q.c1) AS qt, termdict WHERE " +
           stem_of("qt.token") + " = termdict.term)\n";
    sql += "SELECT tf_bm25.docID AS c1, sum(tf_bm25.tf * idf.idf * "
           "qterms.w) AS p FROM tf_bm25, idf, qterms WHERE tf_bm25.termID "
           "= qterms.termID AND idf.termID = qterms.termID GROUP BY "
           "tf_bm25.docID";
    return sql;
  }

 private:
  const Program& program_;
  const Catalog& catalog_;
};

}  // namespace

Result<std::string> EmitSql(const NodePtr& node, const Program& program,
                            const Catalog& catalog) {
  Emitter emitter(program, catalog);
  return emitter.Emit(node);
}

Result<std::string> EmitProgramSql(const Program& program,
                                   const Catalog& catalog) {
  Emitter emitter(program, catalog);
  std::string out;
  for (const auto& [name, node] : program.statements()) {
    SPINDLE_ASSIGN_OR_RETURN(std::string sql, emitter.Emit(node));
    out += "CREATE VIEW " + name + " AS\n" + sql + ";\n\n";
  }
  return out;
}

Result<size_t> InferArity(const NodePtr& node, const Program& program,
                          const Catalog& catalog) {
  Emitter emitter(program, catalog);
  return emitter.Arity(node);
}

}  // namespace spinql
}  // namespace spindle
