#include "spinql/optimizer.h"

#include <algorithm>
#include <optional>

namespace spindle {
namespace spinql {

namespace {

/// Best-effort arity inference without a catalog; nullopt when the tree
/// bottoms out in an opaque RelRef before the arity is determined.
std::optional<size_t> ArityOf(const NodePtr& node) {
  switch (node->kind()) {
    case NodeKind::kRelRef:
      return std::nullopt;
    case NodeKind::kProject:
      return node->items().size();
    case NodeKind::kRank:
      return 1;
    case NodeKind::kJoin: {
      auto l = ArityOf(node->inputs()[0]);
      auto r = ArityOf(node->inputs()[1]);
      if (!l || !r) return std::nullopt;
      return *l + *r;
    }
    case NodeKind::kUnite:
      for (const auto& in : node->inputs()) {
        if (auto a = ArityOf(in)) return a;
      }
      return std::nullopt;
    case NodeKind::kTokenize: {
      auto a = ArityOf(node->inputs()[0]);
      if (!a) return std::nullopt;
      return *a + 1;
    }
    case NodeKind::kSelect:
    case NodeKind::kWeight:
    case NodeKind::kComplement:
    case NodeKind::kBayes:
    case NodeKind::kTopK:
      return ArityOf(node->inputs()[0]);
  }
  return std::nullopt;
}

/// True if the expression references only positional columns in
/// [lo, hi) and never the probability column.
bool RefsOnly(const ExprPtr& e, size_t lo, size_t hi) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      return e->column_index() >= lo && e->column_index() < hi;
    case ExprKind::kNamedColumnRef:
      return false;  // P (or any named ref) blocks movement
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kCall:
      for (const auto& arg : e->args()) {
        if (!RefsOnly(arg, lo, hi)) return false;
      }
      return true;
  }
  return false;
}

/// Shifts every positional reference down by `delta`.
ExprPtr Remap(const ExprPtr& e, size_t delta) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      return Expr::Column(e->column_index() - delta);
    case ExprKind::kNamedColumnRef:
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kCall: {
      std::vector<ExprPtr> args;
      args.reserve(e->args().size());
      for (const auto& arg : e->args()) args.push_back(Remap(arg, delta));
      return Expr::Call(e->function_name(), std::move(args));
    }
  }
  return e;
}

/// Splits a predicate into its AND-conjuncts.
void Conjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kCall && e->function_name() == "and" &&
      e->args().size() == 2) {
    Conjuncts(e->args()[0], out);
    Conjuncts(e->args()[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i]);
  }
  return acc;
}

class Rewriter {
 public:
  explicit Rewriter(OptimizerStats* stats) : stats_(stats) {}

  NodePtr Rewrite(const NodePtr& node) {
    // Rewrite children first, then apply local rules to fixpoint.
    NodePtr current = RebuildWithInputs(node);
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 16) {
      changed = false;
      if (NodePtr next = ApplyLocal(current)) {
        // A root rewrite can create new opportunities below (e.g. a
        // pushed-down SELECT landing on another SELECT) — re-normalize
        // the children before the next root pass.
        current = RebuildWithInputs(next);
        changed = true;
      }
    }
    return current;
  }

 private:
  NodePtr RebuildWithInputs(const NodePtr& node) {
    if (node->inputs().empty()) return node;
    std::vector<NodePtr> inputs;
    inputs.reserve(node->inputs().size());
    bool changed = false;
    for (const auto& in : node->inputs()) {
      NodePtr rewritten = Rewrite(in);
      changed = changed || rewritten.get() != in.get();
      inputs.push_back(std::move(rewritten));
    }
    if (!changed) return node;
    switch (node->kind()) {
      case NodeKind::kSelect:
        return Node::Select(node->predicate(), inputs[0]);
      case NodeKind::kProject:
        return Node::Project(node->assumption(), node->items(),
                             node->names(), inputs[0]);
      case NodeKind::kJoin:
        return Node::Join(node->keys(), inputs[0], inputs[1]);
      case NodeKind::kUnite:
        return Node::Unite(node->assumption(), std::move(inputs));
      case NodeKind::kWeight:
        return Node::Weight(node->weight(), inputs[0]);
      case NodeKind::kComplement:
        return Node::Complement(inputs[0]);
      case NodeKind::kBayes:
        return Node::Bayes(node->group_cols(), inputs[0]);
      case NodeKind::kTokenize:
        return Node::Tokenize(node->tokenize_col(),
                              node->tokenize_analyzer(), inputs[0]);
      case NodeKind::kRank:
        return Node::Rank(node->rank(), inputs[0], inputs[1]);
      case NodeKind::kTopK:
        return Node::TopK(node->k(), inputs[0]);
      case NodeKind::kRelRef:
        break;
    }
    return node;
  }

  /// One local rewrite at the root, or nullptr if none applies.
  NodePtr ApplyLocal(const NodePtr& node) {
    switch (node->kind()) {
      case NodeKind::kSelect: {
        const NodePtr& in = node->inputs()[0];
        // Rule 1: SELECT over SELECT fuses conjunctively (inner first).
        if (in->kind() == NodeKind::kSelect) {
          stats_->select_fusions++;
          return Node::Select(
              Expr::And(in->predicate(), node->predicate()),
              in->inputs()[0]);
        }
        // Rule 2: push single-side conjuncts into join inputs.
        if (in->kind() == NodeKind::kJoin) {
          auto larity = ArityOf(in->inputs()[0]);
          if (!larity) return nullptr;
          auto total = ArityOf(in);
          std::vector<ExprPtr> conjuncts;
          Conjuncts(node->predicate(), &conjuncts);
          std::vector<ExprPtr> to_left, to_right, stay;
          for (const auto& c : conjuncts) {
            if (RefsOnly(c, 0, *larity)) {
              to_left.push_back(c);
            } else if (total &&
                       RefsOnly(c, *larity, *total)) {
              to_right.push_back(Remap(c, *larity));
            } else {
              stay.push_back(c);
            }
          }
          if (to_left.empty() && to_right.empty()) return nullptr;
          stats_->select_pushdowns++;
          NodePtr left = in->inputs()[0];
          NodePtr right = in->inputs()[1];
          if (!to_left.empty()) {
            left = Node::Select(AndAll(to_left), left);
          }
          if (!to_right.empty()) {
            right = Node::Select(AndAll(to_right), right);
          }
          NodePtr join = Node::Join(in->keys(), left, right);
          if (stay.empty()) return join;
          return Node::Select(AndAll(stay), join);
        }
        return nullptr;
      }
      case NodeKind::kWeight: {
        const NodePtr& in = node->inputs()[0];
        // Rule 4: WEIGHT[1] is the identity.
        if (node->weight() == 1.0) {
          stats_->weight_eliminations++;
          return in;
        }
        // Rule 3: nested weights multiply.
        if (in->kind() == NodeKind::kWeight) {
          stats_->weight_fusions++;
          return Node::Weight(node->weight() * in->weight(),
                              in->inputs()[0]);
        }
        // Rule 7: distribute over UNITE DISJOINT (sum is linear).
        if (in->kind() == NodeKind::kUnite &&
            in->assumption() == Assumption::kDisjoint) {
          stats_->weight_distributions++;
          std::vector<NodePtr> weighted;
          weighted.reserve(in->inputs().size());
          for (const auto& u : in->inputs()) {
            weighted.push_back(Node::Weight(node->weight(), u));
          }
          return Node::Unite(Assumption::kDisjoint, std::move(weighted));
        }
        return nullptr;
      }
      case NodeKind::kTopK: {
        const NodePtr& in = node->inputs()[0];
        // Rule 5: nested TOPK keeps the smaller k.
        if (in->kind() == NodeKind::kTopK) {
          stats_->topk_fusions++;
          return Node::TopK(std::min(node->k(), in->k()),
                            in->inputs()[0]);
        }
        return nullptr;
      }
      case NodeKind::kUnite: {
        // Rule 6: flatten nested unions with the same assumption.
        bool flattenable = false;
        for (const auto& in : node->inputs()) {
          if (in->kind() == NodeKind::kUnite &&
              in->assumption() == node->assumption() &&
              node->assumption() != Assumption::kAll) {
            flattenable = true;
            break;
          }
        }
        // UNITE ALL flattening is also exact (pure append).
        if (!flattenable) {
          for (const auto& in : node->inputs()) {
            if (in->kind() == NodeKind::kUnite &&
                in->assumption() == Assumption::kAll &&
                node->assumption() == Assumption::kAll) {
              flattenable = true;
              break;
            }
          }
        }
        if (!flattenable) return nullptr;
        stats_->unite_flattenings++;
        std::vector<NodePtr> flat;
        for (const auto& in : node->inputs()) {
          if (in->kind() == NodeKind::kUnite &&
              in->assumption() == node->assumption()) {
            for (const auto& sub : in->inputs()) flat.push_back(sub);
          } else {
            flat.push_back(in);
          }
        }
        return Node::Unite(node->assumption(), std::move(flat));
      }
      default:
        return nullptr;
    }
  }

  OptimizerStats* stats_;
};

}  // namespace

Result<NodePtr> Optimize(const NodePtr& node, OptimizerStats* stats) {
  OptimizerStats local;
  Rewriter rewriter(stats != nullptr ? stats : &local);
  return rewriter.Rewrite(node);
}

Result<Program> OptimizeProgram(const Program& program,
                                OptimizerStats* stats) {
  Program out;
  for (const auto& [name, node] : program.statements()) {
    SPINDLE_ASSIGN_OR_RETURN(NodePtr optimized, Optimize(node, stats));
    SPINDLE_RETURN_IF_ERROR(out.Append(name, std::move(optimized)));
  }
  return out;
}

}  // namespace spinql
}  // namespace spindle
