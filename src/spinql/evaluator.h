/// \file evaluator.h
/// \brief Executes SpinQL programs against a catalog, with adaptive
/// materialization of every intermediate result (paper §2.2-2.3).
///
/// Each operator node has a canonical signature (its SpinQL text with
/// bindings expanded and base tables pinned to their catalog versions).
/// Results are materialized into the MaterializationCache under that
/// signature, creating "an adaptive, query-driven set of cache tables each
/// corresponding to a specific sub-query on the original data". On-demand
/// text indexes built by RANK nodes are cached the same way, keyed by the
/// signature of their collection subexpression plus the analyzer
/// configuration.

#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/materialization_cache.h"
#include "ir/indexing.h"
#include "spinql/ast.h"
#include "storage/catalog.h"
#include "text/text_functions.h"

namespace spindle {
namespace spinql {

/// \brief SpinQL program evaluator.
class Evaluator {
 public:
  struct Stats {
    uint64_t index_hits = 0;
    uint64_t index_misses = 0;
    /// TOPK-over-RANK fusions that took the pruned top-k path instead of
    /// materializing the full score relation (safe only when every doc
    /// prob is 1.0 and external ids are unique; else falls back).
    uint64_t fused_topk_ranks = 0;
  };

  /// \param catalog base tables (must outlive the evaluator)
  /// \param cache adaptive materialization cache; nullptr disables caching
  ///        of intermediates (used to measure the ablation in E3/E8)
  Evaluator(Catalog* catalog, MaterializationCache* cache = nullptr);

  /// \brief Evaluates the program's final binding.
  Result<ProbRelation> Eval(const Program& program);

  /// \brief Evaluates a specific binding of the program.
  Result<ProbRelation> Eval(const Program& program,
                            const std::string& binding);

  /// \brief Parses and evaluates a single SpinQL expression.
  Result<ProbRelation> EvalExpression(const std::string& spinql);

  /// \brief Runs `spinql` (an optional leading "EXPLAIN ANALYZE " is
  /// stripped, case-insensitively) under a private tracer and returns
  /// the executed operator tree — one line per operator with wall time,
  /// row counts and cache hit/miss/key annotations. The query really
  /// executes (caches are warmed/consulted exactly as in Eval).
  Result<std::string> ExplainAnalyze(const std::string& spinql);

  /// \brief The canonical cache signature of a node (bindings expanded,
  /// base tables version-pinned).
  Result<std::string> Signature(const NodePtr& node,
                                const Program& program) const;

  /// \brief Counter snapshot (by value: concurrent subtrees mutate them).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ClearIndexCache() {
    std::lock_guard<std::mutex> lock(mu_);
    index_cache_.clear();
  }
  MaterializationCache* cache() { return cache_; }

 private:
  Result<ProbRelation> EvalNode(const NodePtr& node, const Program& program);
  /// \param fused_k when > 0, a TOPK(k) sits directly above this RANK: if
  ///        provably safe (all doc probs 1.0, unique external ids) rank
  ///        through the pruned fused path with top_k = fused_k instead of
  ///        materializing the full score relation. `fused` (may be null)
  ///        reports whether the fused path was taken — when false the
  ///        returned relation is the complete exhaustive ranking.
  Result<ProbRelation> EvalRank(const Node& node, const Program& program,
                                size_t fused_k = 0, bool* fused = nullptr);
  Result<NodePtr> ResolveForSignature(const NodePtr& node,
                                      const Program& program) const;

  Catalog* catalog_;             // read-only during evaluation
  MaterializationCache* cache_;  // internally synchronized
  FunctionRegistry* registry_;
  /// Guards index_cache_ and stats_: independent Join/Unite subtrees are
  /// evaluated concurrently, and each may build or look up text indexes.
  mutable std::mutex mu_;
  std::unordered_map<std::string, TextIndexPtr> index_cache_;
  Stats stats_;
};

}  // namespace spinql
}  // namespace spindle
