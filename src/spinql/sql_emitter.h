/// \file sql_emitter.h
/// \brief SpinQL -> SQL translation (paper §2.3).
///
/// SpinQL's "particular focus on efficient translation to SQL" is
/// reproduced as a textual emitter: every operator becomes a SELECT whose
/// output columns are aliased c1..cn plus the probability column p, and
/// probability computations "are only made explicit upon translation into
/// SQL" — joins emit `t1.p * t2.p`, disjoint projections emit `SUM(t.p)`,
/// independent ones `1 - EXP(SUM(LN(1 - t.p)))`, the relational Bayes a
/// window-normalized `t.p / SUM(t.p) OVER (...)`.
///
/// RANK BM25 nodes expand into the paper's full §2.1 view cascade
/// (term_doc, doc_len, termdict, tf, idf, tf_bm25, qterms) as a WITH
/// query, using the tokenize/stem UDFs. The SQL dialect is
/// MonetDB-flavored; Spindle executes plans natively and treats this
/// output as documentation/interchange, exactly like the paper shows it.

#pragma once

#include <string>

#include "common/status.h"
#include "spinql/ast.h"
#include "storage/catalog.h"

namespace spindle {
namespace spinql {

/// \brief Emits SQL for one expression. `catalog` resolves base-table
/// schemas (their real column names are aliased to c1..cn).
Result<std::string> EmitSql(const NodePtr& node, const Program& program,
                            const Catalog& catalog);

/// \brief Emits the whole program as a cascade of CREATE VIEW statements,
/// one per binding — the shape of the paper's Section 2 listings.
Result<std::string> EmitProgramSql(const Program& program,
                                   const Catalog& catalog);

/// \brief Number of attribute columns (p excluded) an expression yields.
Result<size_t> InferArity(const NodePtr& node, const Program& program,
                          const Catalog& catalog);

}  // namespace spinql
}  // namespace spindle
