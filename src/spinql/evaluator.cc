#include "spinql/evaluator.h"

#include <optional>
#include <unordered_set>

#include "engine/ops.h"
#include "exec/request_context.h"
#include "exec/scheduler.h"
#include "ir/ranking.h"
#include "ir/topk_pruning.h"
#include "obs/trace.h"
#include "pra/pra_ops.h"
#include "spinql/parser.h"

namespace spindle {
namespace spinql {

namespace {

/// Output slot for one concurrently evaluated input subtree
/// (Result<ProbRelation> is not default-constructible, so status and
/// value travel separately).
struct EvalSlot {
  Status st;
  std::optional<ProbRelation> rel;
};

/// Removes every "#e<digits>" epoch tag a resolved signature carries
/// (one per base-table reference). Index caches key on the remainder:
/// the stored relation's identity, "tbl:<name>@<version>".
std::string StripEpochTags(const std::string& sig) {
  std::string out;
  out.reserve(sig.size());
  for (size_t i = 0; i < sig.size();) {
    if (sig[i] == '#' && i + 1 < sig.size() && sig[i + 1] == 'e') {
      size_t j = i + 2;
      while (j < sig.size() && sig[j] >= '0' && sig[j] <= '9') ++j;
      if (j > i + 2) {
        i = j;
        continue;
      }
    }
    out.push_back(sig[i]);
    ++i;
  }
  return out;
}

}  // namespace

Evaluator::Evaluator(Catalog* catalog, MaterializationCache* cache)
    : catalog_(catalog), cache_(cache),
      registry_(&FunctionRegistry::Default()) {
  RegisterTextFunctions(*registry_);
}

Result<ProbRelation> Evaluator::Eval(const Program& program) {
  return Eval(program, program.output());
}

Result<ProbRelation> Evaluator::Eval(const Program& program,
                                     const std::string& binding) {
  SPINDLE_ASSIGN_OR_RETURN(NodePtr node, program.Lookup(binding));
  return EvalNode(node, program);
}

Result<ProbRelation> Evaluator::EvalExpression(const std::string& spinql) {
  SPINDLE_ASSIGN_OR_RETURN(NodePtr node, ParseExpression(spinql));
  Program empty_program;
  return EvalNode(node, empty_program);
}

Result<std::string> Evaluator::ExplainAnalyze(const std::string& spinql) {
  // Strip an optional "EXPLAIN ANALYZE" prefix so callers can pass the
  // statement form verbatim.
  std::string_view text = spinql;
  auto strip_word = [&text](std::string_view word) {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
      text.remove_prefix(1);
    }
    if (text.size() < word.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      char c = text[i];
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
      if (c != word[i]) return false;
    }
    text.remove_prefix(word.size());
    return true;
  };
  if (strip_word("EXPLAIN")) {
    strip_word("ANALYZE");  // plain EXPLAIN also executes-and-traces
  }
  obs::Tracer tracer;
  {
    obs::ScopedTracer scope(&tracer);
    SPINDLE_ASSIGN_OR_RETURN(ProbRelation evaluated,
                             EvalExpression(std::string(text)));
    (void)evaluated;
  }
  return tracer.RenderTree();
}

Result<NodePtr> Evaluator::ResolveForSignature(const NodePtr& node,
                                               const Program& program) const {
  if (node->kind() == NodeKind::kRelRef) {
    auto bound = program.Lookup(node->rel_name());
    if (bound.ok()) {
      return ResolveForSignature(bound.ValueOrDie(), program);
    }
    // Version identifies the stored relation; the epoch trails it so
    // live writes (which bump the epoch without replacing the relation)
    // retire stale materialization-cache entries. Index caches key on
    // the version alone — see StripEpochTags below.
    return Node::RelRef("tbl:" + node->rel_name() + "@" +
                        std::to_string(catalog_->Version(node->rel_name())) +
                        "#e" +
                        std::to_string(catalog_->Epoch(node->rel_name())));
  }
  std::vector<NodePtr> inputs;
  inputs.reserve(node->inputs().size());
  for (const auto& in : node->inputs()) {
    SPINDLE_ASSIGN_OR_RETURN(NodePtr resolved,
                             ResolveForSignature(in, program));
    inputs.push_back(std::move(resolved));
  }
  switch (node->kind()) {
    case NodeKind::kSelect:
      return Node::Select(node->predicate(), inputs[0]);
    case NodeKind::kProject:
      return Node::Project(node->assumption(), node->items(), node->names(),
                           inputs[0]);
    case NodeKind::kJoin:
      return Node::Join(node->keys(), inputs[0], inputs[1]);
    case NodeKind::kUnite:
      return Node::Unite(node->assumption(), std::move(inputs));
    case NodeKind::kWeight:
      return Node::Weight(node->weight(), inputs[0]);
    case NodeKind::kComplement:
      return Node::Complement(inputs[0]);
    case NodeKind::kBayes:
      return Node::Bayes(node->group_cols(), inputs[0]);
    case NodeKind::kTokenize:
      return Node::Tokenize(node->tokenize_col(), node->tokenize_analyzer(),
                            inputs[0]);
    case NodeKind::kRank:
      return Node::Rank(node->rank(), inputs[0], inputs[1]);
    case NodeKind::kTopK:
      return Node::TopK(node->k(), inputs[0]);
    case NodeKind::kRelRef:
      break;  // handled above
  }
  return Status::Internal("unreachable node kind");
}

Result<std::string> Evaluator::Signature(const NodePtr& node,
                                         const Program& program) const {
  SPINDLE_ASSIGN_OR_RETURN(NodePtr resolved,
                           ResolveForSignature(node, program));
  return resolved->ToString();
}

Result<ProbRelation> Evaluator::EvalNode(const NodePtr& node,
                                         const Program& program) {
  // Operator-boundary cancellation point: a request past its deadline
  // stops descending the plan and unwinds as a Status.
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
  if (node->kind() == NodeKind::kRelRef) {
    auto bound = program.Lookup(node->rel_name());
    if (bound.ok()) return EvalNode(bound.ValueOrDie(), program);
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel,
                             catalog_->Get(node->rel_name()));
    return ProbRelation::Attach(std::move(rel));
  }

  // One span per operator node — the EXPLAIN ANALYZE tree. Child
  // operators evaluate inside this scope (including concurrent JOIN/
  // UNITE subtrees, whose spans link back here through TaskGroup's
  // trace-context propagation), so nesting mirrors the plan.
  obs::Span span("spinql", NodeKindName(node->kind()));

  std::string signature;
  if (cache_ != nullptr) {
    SPINDLE_ASSIGN_OR_RETURN(signature, Signature(node, program));
    if (auto hit = cache_->Get(signature)) {
      if (span.active()) {
        span.Note("cache", "hit");
        span.Note("key", signature);
        span.Add("rows_out", static_cast<int64_t>((*hit)->num_rows()));
      }
      return ProbRelation::Wrap(*hit);
    }
  }

  ProbRelation result;
  switch (node->kind()) {
    case NodeKind::kSelect: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      SPINDLE_ASSIGN_OR_RETURN(
          result, pra::Select(in, node->predicate(), *registry_));
      break;
    }
    case NodeKind::kProject: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      // Fill default output names: a plain $N keeps the input field name,
      // computed items become c1, c2, ...
      std::vector<std::string> names = node->names();
      for (size_t i = 0; i < names.size(); ++i) {
        if (!names[i].empty()) continue;
        const ExprPtr& item = node->items()[i];
        if (item->kind() == ExprKind::kColumnRef &&
            item->column_index() < in.arity()) {
          names[i] = in.rel()->schema().field(item->column_index()).name;
        } else {
          std::string fresh = "c";
          fresh += std::to_string(i + 1);
          names[i] = std::move(fresh);
        }
      }
      SPINDLE_ASSIGN_OR_RETURN(
          result, pra::Project(in, node->items(), names, node->assumption(),
                               *registry_));
      break;
    }
    case NodeKind::kJoin: {
      // Independent subtrees: evaluate the left input on a pool task
      // while this thread evaluates the right, then join.
      const ExecContext& ctx = ExecContext::Current();
      if (ctx.threads > 1) {
        EvalSlot lslot, rslot;
        auto eval_into = [&](const NodePtr& in_node, EvalSlot& slot) {
          Result<ProbRelation> in = EvalNode(in_node, program);
          if (in.ok()) {
            slot.rel = std::move(in).ValueOrDie();
          } else {
            slot.st = in.status();
          }
        };
        Scheduler::Global().EnsureWorkers(ctx.threads - 1);
        TaskGroup group;
        group.Spawn([&] { eval_into(node->inputs()[0], lslot); });
        eval_into(node->inputs()[1], rslot);
        group.Wait();
        if (!lslot.st.ok()) return lslot.st;
        if (!rslot.st.ok()) return rslot.st;
        SPINDLE_ASSIGN_OR_RETURN(
            result, pra::JoinIndependent(*lslot.rel, *rslot.rel,
                                         node->keys()));
        break;
      }
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation l,
                               EvalNode(node->inputs()[0], program));
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation r,
                               EvalNode(node->inputs()[1], program));
      SPINDLE_ASSIGN_OR_RETURN(result,
                               pra::JoinIndependent(l, r, node->keys()));
      break;
    }
    case NodeKind::kUnite: {
      // The branches of a UNITE are exactly the paper's independent
      // strategy blocks (a Mix compiles to WEIGHT+UNITE); evaluate them
      // concurrently and combine in input order.
      const ExecContext& ctx = ExecContext::Current();
      const auto& in_nodes = node->inputs();
      if (ctx.threads > 1 && in_nodes.size() > 1) {
        std::vector<EvalSlot> slots(in_nodes.size());
        auto eval_into = [&](size_t i) {
          Result<ProbRelation> in = EvalNode(in_nodes[i], program);
          if (in.ok()) {
            slots[i].rel = std::move(in).ValueOrDie();
          } else {
            slots[i].st = in.status();
          }
        };
        Scheduler::Global().EnsureWorkers(ctx.threads - 1);
        TaskGroup group;
        for (size_t i = 0; i + 1 < in_nodes.size(); ++i) {
          group.Spawn([&eval_into, i] { eval_into(i); });
        }
        eval_into(in_nodes.size() - 1);
        group.Wait();
        std::vector<ProbRelation> inputs;
        inputs.reserve(slots.size());
        for (auto& slot : slots) {
          if (!slot.st.ok()) return slot.st;
          inputs.push_back(std::move(*slot.rel));
        }
        SPINDLE_ASSIGN_OR_RETURN(result,
                                 pra::Unite(node->assumption(), inputs));
        break;
      }
      std::vector<ProbRelation> inputs;
      inputs.reserve(node->inputs().size());
      for (const auto& in_node : node->inputs()) {
        SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                                 EvalNode(in_node, program));
        inputs.push_back(std::move(in));
      }
      SPINDLE_ASSIGN_OR_RETURN(result,
                               pra::Unite(node->assumption(), inputs));
      break;
    }
    case NodeKind::kWeight: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      SPINDLE_ASSIGN_OR_RETURN(result, pra::Weight(in, node->weight()));
      break;
    }
    case NodeKind::kComplement: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      SPINDLE_ASSIGN_OR_RETURN(result, pra::Complement(in));
      break;
    }
    case NodeKind::kBayes: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      SPINDLE_ASSIGN_OR_RETURN(result,
                               pra::Bayes(in, node->group_cols()));
      break;
    }
    case NodeKind::kTokenize: {
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                               EvalNode(node->inputs()[0], program));
      const size_t arity = in.arity();
      if (node->tokenize_col() >= arity) {
        return Status::OutOfRange("TOKENIZE column out of range");
      }
      SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer,
                               Analyzer::Make(node->tokenize_analyzer()));
      SPINDLE_ASSIGN_OR_RETURN(
          RelationPtr tokenized,
          TokenizeRelation(in.rel(), node->tokenize_col(), analyzer));
      // tokenized: attrs without text col (p last among them), term, pos.
      // Reorder so p is trailing again: attrs..., term, pos, p.
      std::vector<size_t> order;
      for (size_t c = 0; c + 1 < arity; ++c) order.push_back(c);
      order.push_back(arity);      // term
      order.push_back(arity + 1);  // pos
      order.push_back(arity - 1);  // p
      SPINDLE_ASSIGN_OR_RETURN(RelationPtr reordered,
                               ProjectColumns(tokenized, order));
      SPINDLE_ASSIGN_OR_RETURN(result,
                               ProbRelation::Wrap(std::move(reordered)));
      break;
    }
    case NodeKind::kRank: {
      SPINDLE_ASSIGN_OR_RETURN(result, EvalRank(*node, program));
      break;
    }
    case NodeKind::kTopK: {
      const NodePtr& child = node->inputs()[0];
      if (child->kind() == NodeKind::kRank && node->k() > 0) {
        // TOPK directly above RANK: let the rank evaluate through the
        // fused pruned path when safe, instead of materializing the full
        // score relation. TopKByProb still applies (it is a no-op cut on
        // an already k-bounded, prob-descending fused result).
        if (cache_ != nullptr) {
          // A previously materialized full ranking beats re-ranking.
          SPINDLE_ASSIGN_OR_RETURN(std::string child_sig,
                                   Signature(child, program));
          if (auto hit = cache_->Get(child_sig)) {
            SPINDLE_ASSIGN_OR_RETURN(ProbRelation in,
                                     ProbRelation::Wrap(*hit));
            SPINDLE_ASSIGN_OR_RETURN(result,
                                     pra::TopKByProb(in, node->k()));
            break;
          }
        }
        bool fused = false;
        SPINDLE_ASSIGN_OR_RETURN(
            ProbRelation in, EvalRank(*child, program, node->k(), &fused));
        if (!fused && cache_ != nullptr) {
          // The fallback computed the complete ranking; cache it under
          // the rank node's own signature, exactly as the unfused
          // evaluation order would have.
          SPINDLE_ASSIGN_OR_RETURN(std::string child_sig,
                                   Signature(child, program));
          cache_->Put(child_sig, in.rel());
        }
        SPINDLE_ASSIGN_OR_RETURN(result, pra::TopKByProb(in, node->k()));
        break;
      }
      SPINDLE_ASSIGN_OR_RETURN(ProbRelation in, EvalNode(child, program));
      SPINDLE_ASSIGN_OR_RETURN(result, pra::TopKByProb(in, node->k()));
      break;
    }
    case NodeKind::kRelRef:
      return Status::Internal("unreachable");
  }

  // A cancelled request may have abandoned morsels inside the operator
  // above (ParallelFor stops dispensing); its partial result must neither
  // be cached nor returned. Checked after *every* operator, so a result
  // that does escape is always complete.
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
  if (cache_ != nullptr) {
    cache_->Put(signature, result.rel());
  }
  if (span.active()) {
    span.Add("rows_out", static_cast<int64_t>(result.num_rows()));
    span.Note("cache", cache_ != nullptr ? "miss" : "off");
    if (cache_ != nullptr) span.Note("key", signature);
  }
  return result;
}

Result<ProbRelation> Evaluator::EvalRank(const Node& node,
                                         const Program& program,
                                         size_t fused_k, bool* fused) {
  if (fused != nullptr) *fused = false;
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation docs,
                           EvalNode(node.inputs()[0], program));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation query,
                           EvalNode(node.inputs()[1], program));
  if (docs.arity() < 2 ||
      docs.rel()->column(1).type() != DataType::kString) {
    return Status::InvalidArgument(
        "RANK collection input must be (id, text: string[, ...], p), got " +
        docs.rel()->schema().ToString());
  }
  if (query.arity() < 1 ||
      query.rel()->column(0).type() != DataType::kString) {
    return Status::InvalidArgument(
        "RANK query input must be (text: string[, ...], p), got " +
        query.rel()->schema().ToString());
  }

  const RankSpec& spec = node.rank();
  SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer,
                           Analyzer::Make(spec.analyzer));

  // On-demand index keyed by the collection subexpression's signature —
  // query-independent, so all queries over the same sub-collection share
  // one materialized index. The epoch tags are stripped: an index
  // depends only on the stored relation (the version), and live writes
  // bump epochs on every accepted write — keeping them here would
  // rebuild the index once per write for an unchanged relation.
  SPINDLE_ASSIGN_OR_RETURN(std::string docs_sig,
                           Signature(node.inputs()[0], program));
  std::string index_key =
      StripEpochTags(docs_sig) + "|" + analyzer.Signature();
  TextIndexPtr index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_cache_.find(index_key);
    if (it != index_cache_.end()) {
      stats_.index_hits++;
      index = it->second;
    } else {
      stats_.index_misses++;
    }
  }
  if (index != nullptr) obs::Event("ir", "index_hit");
  if (index == nullptr) {
    // Build outside the lock (concurrent UNITE branches may rank in
    // parallel; the expensive build must not serialize them). On a race
    // the first inserted index wins and the duplicate is discarded.
    // Dense internal docIDs 1..n; external ids (string or int64) are
    // restored after ranking.
    obs::Span build_span("ir", "index_build");
    if (build_span.active()) {
      build_span.Add("docs", static_cast<int64_t>(docs.num_rows()));
      build_span.Note("key", index_key);
    }
    Schema schema({{"docID", DataType::kInt64},
                   {"data", DataType::kString}});
    std::vector<int64_t> ids(docs.num_rows());
    for (size_t r = 0; r < docs.num_rows(); ++r) {
      ids[r] = static_cast<int64_t>(r) + 1;
    }
    std::vector<Column> cols;
    cols.push_back(Column::MakeInt64(std::move(ids)));
    Column data = docs.rel()->column(1);
    cols.push_back(std::move(data));
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr dense_docs,
        Relation::Make(std::move(schema), std::move(cols)));
    SPINDLE_ASSIGN_OR_RETURN(index, TextIndex::Build(dense_docs, analyzer));
    std::lock_guard<std::mutex> lock(mu_);
    index = index_cache_.emplace(std::move(index_key), index).first->second;
  }

  // Weighted query terms: every query row contributes its analyzed tokens
  // with weight p (synonym/compound expansion uses weights < 1).
  std::vector<std::pair<std::string, double>> texts;
  texts.reserve(query.num_rows());
  for (size_t r = 0; r < query.num_rows(); ++r) {
    texts.emplace_back(query.rel()->column(0).StringAt(r), query.prob_at(r));
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qterms,
                           index->QueryTermsWeighted(texts));

  SearchOptions options;
  options.model = spec.model;
  options.bm25 = spec.bm25;
  options.dirichlet = spec.dirichlet;
  options.jm = spec.jm;
  options.top_k = 0;  // TOPK is a separate operator

  // TOPK-over-RANK fusion: rank through the pruned top-k path when the
  // cut provably commutes with the post-rank transforms — every doc prob
  // must be 1.0 (the prob multiplies the score, so a prob < 1 could
  // reorder) and external ids must be unique (the disjoint projection
  // below merges duplicate ids, so a pre-merge cut could drop evidence).
  bool use_fused = fused_k > 0;
  if (use_fused) {
    for (size_t r = 0; r < docs.num_rows() && use_fused; ++r) {
      if (docs.prob_at(r) != 1.0) use_fused = false;
    }
  }
  if (use_fused) {
    const Column& ids = docs.rel()->column(0);
    if (ids.type() == DataType::kInt64) {
      std::unordered_set<int64_t> seen;
      seen.reserve(docs.num_rows());
      for (size_t r = 0; r < docs.num_rows() && use_fused; ++r) {
        if (!seen.insert(ids.Int64At(r)).second) use_fused = false;
      }
    } else {
      std::unordered_set<std::string> seen;
      seen.reserve(docs.num_rows());
      for (size_t r = 0; r < docs.num_rows() && use_fused; ++r) {
        if (!seen.insert(ids.StringAt(r)).second) use_fused = false;
      }
    }
  }

  RelationPtr scored;
  if (use_fused) {
    options.top_k = fused_k;
    obs::Event("spinql", "rank_fused");
    SPINDLE_ASSIGN_OR_RETURN(scored, RankTopK(*index, qterms, options));
    if (fused != nullptr) *fused = true;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.fused_topk_ranks++;
  } else {
    SPINDLE_ASSIGN_OR_RETURN(scored, RankWithModel(*index, qterms, options));
  }
  // The ranking above may have been abandoned mid-morsel; never let a
  // partial score relation reach the caller (or the TOPK fast path's
  // cache insert).
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());

  // Map dense docIDs back to external ids; the document's own probability
  // multiplies the score (scores and sub-collection confidence combine
  // independently).
  const Column& id_col = docs.rel()->column(0);
  Schema out_schema({{"id", id_col.type()}, {"p", DataType::kFloat64}});
  Column out_ids(id_col.type());
  Column out_p(DataType::kFloat64);
  out_ids.Reserve(scored->num_rows());
  out_p.Reserve(scored->num_rows());
  for (size_t r = 0; r < scored->num_rows(); ++r) {
    size_t docs_row =
        static_cast<size_t>(scored->column(0).Int64At(r)) - 1;
    out_ids.AppendFrom(id_col, docs_row);
    out_p.AppendFloat64(scored->column(1).Float64At(r) *
                        docs.prob_at(docs_row));
  }
  std::vector<Column> out_cols;
  out_cols.push_back(std::move(out_ids));
  out_cols.push_back(std::move(out_p));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr out,
      Relation::Make(std::move(out_schema), std::move(out_cols)));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation ranked,
                           ProbRelation::Wrap(std::move(out)));
  // A single external id can appear as several documents (e.g. multiple
  // description triples); their evidence accumulates disjointly.
  return pra::Project(ranked, {Expr::Column(0)}, {"id"},
                      Assumption::kDisjoint, *registry_);
}

}  // namespace spinql
}  // namespace spindle
