/// \file optimizer.h
/// \brief Algebraic rewrites for SpinQL plans.
///
/// Strategy compilation produces straightforward but naive plans (every
/// block emits its fragment independently). The optimizer applies
/// probability-preserving rewrites before evaluation:
///
///   1. SELECT fusion:        SELECT[p](SELECT[q](x))  ->  SELECT[q AND p](x)
///   2. SELECT pushdown into JOIN inputs when the predicate touches only
///      one side's attributes (with positional remapping),
///   3. WEIGHT fusion:        WEIGHT[a](WEIGHT[b](x))  ->  WEIGHT[a*b](x)
///   4. WEIGHT[1] elimination,
///   5. TOPK fusion:          TOPK[a](TOPK[b](x))      ->  TOPK[min(a,b)](x)
///   6. UNITE flattening for nested unions under the same assumption
///      (noisy-or, sum and max are associative),
///   7. WEIGHT distribution over UNITE DISJOINT
///      (w * sum = sum of w*), enabling further fusion.
///
/// All rewrites are exact: the optimized plan evaluates to a relation
/// equal (up to row order, which Spindle operators keep deterministic) to
/// the original — property-tested in tests/optimizer_test.cc.

#pragma once

#include "common/status.h"
#include "spinql/ast.h"

namespace spindle {
namespace spinql {

/// \brief Rewrite statistics for inspection and tests.
struct OptimizerStats {
  int select_fusions = 0;
  int select_pushdowns = 0;
  int weight_fusions = 0;
  int weight_eliminations = 0;
  int topk_fusions = 0;
  int unite_flattenings = 0;
  int weight_distributions = 0;

  int total() const {
    return select_fusions + select_pushdowns + weight_fusions +
           weight_eliminations + topk_fusions + unite_flattenings +
           weight_distributions;
  }
};

/// \brief Optimizes one expression tree (bindings are not expanded; a
/// RelRef is treated as opaque).
Result<NodePtr> Optimize(const NodePtr& node, OptimizerStats* stats);

/// \brief Optimizes every statement of a program.
Result<Program> OptimizeProgram(const Program& program,
                                OptimizerStats* stats);

}  // namespace spinql
}  // namespace spindle
