#include "spinql/ast.h"

#include "common/str.h"

namespace spindle {
namespace spinql {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRelRef:
      return "relref";
    case NodeKind::kSelect:
      return "select";
    case NodeKind::kProject:
      return "project";
    case NodeKind::kJoin:
      return "join";
    case NodeKind::kUnite:
      return "unite";
    case NodeKind::kWeight:
      return "weight";
    case NodeKind::kComplement:
      return "complement";
    case NodeKind::kBayes:
      return "bayes";
    case NodeKind::kTokenize:
      return "tokenize";
    case NodeKind::kRank:
      return "rank";
    case NodeKind::kTopK:
      return "topk";
  }
  return "?";
}

std::string RankSpec::ToString() const {
  std::string out;
  switch (model) {
    case RankModel::kBm25:
      out = "BM25 [k1=" + FormatDouble(bm25.k1) + ", b=" +
            FormatDouble(bm25.b);
      break;
    case RankModel::kTfIdf:
      out = "TFIDF [";
      break;
    case RankModel::kLmDirichlet:
      out = "LMD [mu=" + FormatDouble(dirichlet.mu);
      break;
    case RankModel::kLmJelinekMercer:
      out = "LMJM [lambda=" + FormatDouble(jm.lambda);
      break;
  }
  if (out.back() != '[') out += ", ";
  out += "analyzer=" + QuoteString(analyzer.stemmer) + "]";
  return out;
}

NodePtr Node::RelRef(std::string name) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kRelRef));
  n->rel_name_ = std::move(name);
  return n;
}

NodePtr Node::Select(ExprPtr predicate, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kSelect));
  n->predicate_ = std::move(predicate);
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Project(Assumption assumption, std::vector<ExprPtr> items,
                      std::vector<std::string> names, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kProject));
  n->assumption_ = assumption;
  n->items_ = std::move(items);
  n->names_ = std::move(names);
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Join(std::vector<JoinKey> keys, NodePtr left, NodePtr right) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kJoin));
  n->keys_ = std::move(keys);
  n->inputs_ = {std::move(left), std::move(right)};
  return n;
}

NodePtr Node::Unite(Assumption assumption, std::vector<NodePtr> inputs) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kUnite));
  n->assumption_ = assumption;
  n->inputs_ = std::move(inputs);
  return n;
}

NodePtr Node::Weight(double w, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kWeight));
  n->weight_ = w;
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Complement(NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kComplement));
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Bayes(std::vector<size_t> group_cols, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kBayes));
  n->group_cols_ = std::move(group_cols);
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Tokenize(size_t column, AnalyzerOptions analyzer, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kTokenize));
  n->tokenize_col_ = column;
  n->tokenize_analyzer_ = std::move(analyzer);
  n->inputs_ = {std::move(in)};
  return n;
}

NodePtr Node::Rank(RankSpec spec, NodePtr docs, NodePtr query) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kRank));
  n->rank_ = std::move(spec);
  n->inputs_ = {std::move(docs), std::move(query)};
  return n;
}

NodePtr Node::TopK(size_t k, NodePtr in) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kTopK));
  n->k_ = k;
  n->inputs_ = {std::move(in)};
  return n;
}

std::string Node::ToString() const {
  switch (kind_) {
    case NodeKind::kRelRef:
      return rel_name_;
    case NodeKind::kSelect:
      return "SELECT [" + predicate_->ToString() + "] (" +
             inputs_[0]->ToString() + ")";
    case NodeKind::kProject: {
      std::string out = "PROJECT ";
      if (assumption_ != Assumption::kAll) {
        out += AssumptionName(assumption_);
        out += " ";
      }
      out += "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ", ";
        out += items_[i]->ToString();
        if (!names_[i].empty()) out += " AS " + names_[i];
      }
      out += "] (" + inputs_[0]->ToString() + ")";
      return out;
    }
    case NodeKind::kJoin: {
      std::string out = "JOIN INDEPENDENT [";
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "$";
        out += std::to_string(keys_[i].left + 1);
        out += "=$";
        out += std::to_string(keys_[i].right + 1);
      }
      out += "] (" + inputs_[0]->ToString() + ", " +
             inputs_[1]->ToString() + ")";
      return out;
    }
    case NodeKind::kUnite: {
      std::string out = "UNITE ";
      out += AssumptionName(assumption_);
      out += " (";
      for (size_t i = 0; i < inputs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += inputs_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case NodeKind::kWeight:
      return "WEIGHT [" + FormatDouble(weight_) + "] (" +
             inputs_[0]->ToString() + ")";
    case NodeKind::kComplement:
      return "COMPLEMENT (" + inputs_[0]->ToString() + ")";
    case NodeKind::kBayes: {
      std::string out = "BAYES [";
      for (size_t i = 0; i < group_cols_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "$";
        out += std::to_string(group_cols_[i] + 1);
      }
      out += "] (" + inputs_[0]->ToString() + ")";
      return out;
    }
    case NodeKind::kTokenize: {
      std::string out = "TOKENIZE [$" + std::to_string(tokenize_col_ + 1);
      out += ", " + QuoteString(tokenize_analyzer_.stemmer);
      out += "] (" + inputs_[0]->ToString() + ")";
      return out;
    }
    case NodeKind::kRank:
      return "RANK " + rank_.ToString() + " (" + inputs_[0]->ToString() +
             ", " + inputs_[1]->ToString() + ")";
    case NodeKind::kTopK:
      return "TOPK [" + std::to_string(k_) + "] (" +
             inputs_[0]->ToString() + ")";
  }
  return "";
}

Result<NodePtr> Program::Lookup(const std::string& name) const {
  for (const auto& [bname, node] : statements_) {
    if (bname == name) return node;
  }
  return Status::NotFound("no SpinQL binding named '" + name + "'");
}

bool Program::HasBinding(const std::string& name) const {
  for (const auto& [bname, node] : statements_) {
    if (bname == name) return true;
  }
  return false;
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& [name, node] : statements_) {
    out += name + " = " + node->ToString() + ";\n";
  }
  return out;
}

Status Program::Append(std::string name, NodePtr node) {
  if (HasBinding(name)) {
    return Status::AlreadyExists("binding '" + name + "' already defined");
  }
  statements_.emplace_back(std::move(name), std::move(node));
  return Status::OK();
}

}  // namespace spinql
}  // namespace spindle
