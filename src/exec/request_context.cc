#include "exec/request_context.h"

namespace spindle {

namespace {

const RequestContext*& CurrentSlot() {
  thread_local const RequestContext* tl = nullptr;
  return tl;
}

}  // namespace

const RequestContext* RequestContext::Current() { return CurrentSlot(); }

ScopedRequestContext::ScopedRequestContext(RequestContext ctx)
    : ctx_(std::move(ctx)) {
  prev_ = CurrentSlot();
  CurrentSlot() = &ctx_;
}

ScopedRequestContext::~ScopedRequestContext() { CurrentSlot() = prev_; }

}  // namespace spindle
