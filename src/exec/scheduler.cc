#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "exec/request_context.h"
#include "obs/trace.h"

namespace spindle {

namespace {

// Index of the calling thread within the pool, or -1 for external threads.
thread_local int tls_worker_index = -1;

}  // namespace

Scheduler& Scheduler::Global() {
  // Leaked on purpose: workers run until process exit, and a static
  // destructor could otherwise race tasks still in flight.
  static Scheduler* instance = new Scheduler();
  return *instance;
}

void Scheduler::EnsureWorkers(int count) {
  count = std::min(count, kMaxWorkers);
  if (workers_started_.load(std::memory_order_acquire) >= count) return;
  std::lock_guard<std::mutex> lock(grow_mu_);
  int started = workers_started_.load(std::memory_order_acquire);
  while (started < count) {
    workers_[started] = std::make_unique<Worker>();
    int index = started;
    workers_[started]->thread = std::thread([this, index] { WorkerLoop(index); });
    workers_[started]->thread.detach();
    ++started;
    // Release-publish the slot only after the Worker object is complete.
    workers_started_.store(started, std::memory_order_release);
  }
}

void Scheduler::Submit(Task task) {
  int self = tls_worker_index;
  int live = workers_started_.load(std::memory_order_acquire);
  if (self >= 0 && self < live) {
    Worker& w = *workers_[self];
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.deque.push_back(std::move(task));
    }
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    injected_.push_back(std::move(task));
  }
  NotifyOne();
}

void Scheduler::NotifyOne() {
  // Bump the epoch under the sleep mutex so a worker that just checked
  // for work and is about to sleep cannot miss this wakeup.
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
}

bool Scheduler::PopOwn(int index, Task& out) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool Scheduler::PopInjected(Task& out) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (injected_.empty()) return false;
  out = std::move(injected_.front());
  injected_.pop_front();
  return true;
}

bool Scheduler::Steal(int thief, Task& out) {
  int live = workers_started_.load(std::memory_order_acquire);
  if (live == 0) return false;
  // Start at a thief-dependent offset so victims differ across thieves.
  int start = thief >= 0 ? (thief + 1) % live : 0;
  for (int i = 0; i < live; ++i) {
    int victim = (start + i) % live;
    if (victim == thief) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.front());
      w.deque.pop_front();
      return true;
    }
  }
  return false;
}

bool Scheduler::RunOneTask() {
  Task task;
  int self = tls_worker_index;
  if (self >= 0 && PopOwn(self, task)) {
    task();
    return true;
  }
  if (PopInjected(task)) {
    task();
    return true;
  }
  if (Steal(self, task)) {
    task();
    return true;
  }
  return false;
}

void Scheduler::WorkerLoop(int index) {
  tls_worker_index = index;
  for (;;) {
    if (RunOneTask()) continue;
    // No work found: snapshot the epoch, re-check, then sleep until the
    // epoch moves. Submit bumps the epoch under sleep_mu_, so between our
    // snapshot and the wait we cannot lose a wakeup.
    uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
      return work_epoch_.load(std::memory_order_acquire) != seen;
    });
  }
}

TaskGroup::TaskGroup(Scheduler& scheduler)
    : scheduler_(scheduler), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  // A TaskGroup must be Wait()ed before destruction; tolerate misuse by
  // waiting here (the shared State already keeps tasks memory-safe).
  if (state_->pending.load(std::memory_order_acquire) != 0) Wait();
}

void TaskGroup::Spawn(Task task) {
  state_->pending.fetch_add(1, std::memory_order_acq_rel);
  std::shared_ptr<State> state = state_;
  // Capture the spawning thread's context so the task sees the same
  // thread budget / morsel size (ExecContext::Current() is thread-local).
  // The request context (deadline / cancel token) travels the same way so
  // pool workers hit the same cancellation points as the request thread.
  ExecContext ctx = ExecContext::Current();
  const RequestContext* rc = RequestContext::Current();
  std::shared_ptr<RequestContext> req =
      rc == nullptr ? nullptr : std::make_shared<RequestContext>(*rc);
  // The trace context travels separately from the RequestContext: the
  // worker's spans must link to the span open *here* at spawn time, and
  // ScopedRequestContext never touches the ambient tracing state. The
  // clock is only read when a tracer is installed (queue-wait counter).
  const obs::TraceContext tc = obs::CurrentTraceContext();
  const uint64_t enqueue_ns = tc.tracer != nullptr ? obs::NowNs() : 0;
  scheduler_.Submit([state, ctx, req, tc, enqueue_ns,
                     task = std::move(task)]() {
    ScopedExecContext scope(ctx);
    std::unique_ptr<ScopedRequestContext> req_scope;
    if (req != nullptr) {
      req_scope = std::make_unique<ScopedRequestContext>(*req);
    }
    std::optional<obs::ScopedTraceContext> trace_scope;
    if (tc.tracer != nullptr) trace_scope.emplace(tc);
    try {
      obs::Span task_span("exec", "task");
      if (task_span.active()) {
        task_span.Add("queue_wait_us", static_cast<int64_t>(
                                           (obs::NowNs() - enqueue_ns) /
                                           1000));
      }
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->first_error) state->first_error = std::current_exception();
    }
    // notify under the mutex so a waiter between its pending-check and
    // its cv wait cannot miss the signal.
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      state->done_cv.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  // Help: drain queued tasks (ours or anyone's) while our group is live.
  while (state_->pending.load(std::memory_order_acquire) != 0) {
    if (!scheduler_.RunOneTask()) {
      std::unique_lock<std::mutex> lock(state_->mu);
      if (state_->pending.load(std::memory_order_acquire) == 0) break;
      // Short timed wait as belt-and-braces: a task of ours may be running
      // on a worker while new helpable work appears elsewhere.
      state_->done_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    err = state_->first_error;
    state_->first_error = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ParallelFor(const ExecContext& ctx, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t morsel = ctx.morsel_rows == 0 ? 1 : ctx.morsel_rows;
  const size_t num_morsels = (n + morsel - 1) / morsel;

  if (ctx.threads <= 1 || num_morsels == 1) {
    // Serial path: exact legacy loop, ascending order, calling thread.
    // The per-morsel cancellation check mirrors the parallel driver: a
    // cancelled request stops between morsels, and the caller's
    // cancellation point turns the abandoned partial into a Status.
    for (size_t m = 0; m < num_morsels; ++m) {
      if (RequestContext::CurrentCancelled()) return;
      size_t begin = m * morsel;
      size_t end = std::min(begin + morsel, n);
      obs::Span span("exec", "morsel");
      if (span.active()) {
        span.Add("index", static_cast<int64_t>(m));
        span.Add("rows", static_cast<int64_t>(end - begin));
      }
      body(begin, end, m);
    }
    return;
  }

  Scheduler& sched = Scheduler::Global();
  sched.EnsureWorkers(ctx.threads - 1);

  // Driver-task pattern: `drivers` tasks plus the caller all loop over a
  // shared atomic morsel counter, bounding concurrency to ctx.threads
  // while keeping the morsel grid independent of the thread count.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto run_morsels = [&body, next, n, morsel, num_morsels]() {
    for (;;) {
      // Morsel-granular cancellation: once the ambient request is
      // cancelled or past its deadline, stop claiming morsels so the
      // request frees its cores promptly. Remaining morsels are simply
      // never run; the caller must check its request context afterwards
      // and discard the partial result (every Result-returning caller
      // in the engine does).
      if (RequestContext::CurrentCancelled()) return;
      size_t m = next->fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) return;
      size_t begin = m * morsel;
      size_t end = std::min(begin + morsel, n);
      obs::Span span("exec", "morsel");
      if (span.active()) {
        span.Add("index", static_cast<int64_t>(m));
        span.Add("rows", static_cast<int64_t>(end - begin));
      }
      body(begin, end, m);
    }
  };

  size_t drivers =
      std::min<size_t>(static_cast<size_t>(ctx.threads), num_morsels) - 1;
  TaskGroup group(sched);
  for (size_t i = 0; i < drivers; ++i) group.Spawn(run_morsels);
  run_morsels();  // the caller participates
  group.Wait();
}

}  // namespace spindle
