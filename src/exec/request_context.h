/// \file request_context.h
/// \brief Per-request deadline / cancellation state for concurrent serving.
///
/// A RequestContext travels with one client request through the engine: it
/// carries an optional deadline, a cooperative CancelToken shared by every
/// thread working on the request, and a scheduling priority consulted by
/// the admission controller (server/admission.h).
///
/// Cancellation is cooperative and *sound*: cancellation points only ever
/// turn a would-be result into a Status (kDeadlineExceeded / kCancelled) —
/// a partial result never escapes, is never cached, and a request that
/// runs to completion is bit-identical to one executed with no context at
/// all. The engine checks the ambient context
///
///   - in exec::ParallelFor, before claiming each morsel (a cancelled
///     request stops burning cores at morsel granularity),
///   - between SpinQL operators (spinql::Evaluator::EvalNode) and before
///     any materialization-cache insert,
///   - at Searcher::Search entry and inside the fused top-k scoring loop
///     (ir/topk_pruning.cc, every few thousand candidates).
///
/// Like ExecContext, the ambient context is a thread-local installed with
/// ScopedRequestContext; TaskGroup::Spawn propagates it to pool tasks so
/// morsels executed by workers observe the same token. No ambient context
/// (the default everywhere outside the server) means "never cancelled" and
/// costs one thread-local read per check.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace spindle {

namespace obs {
class Tracer;
}  // namespace obs

/// \brief Shared cancellation flag for one request. Thread-safe; cheap to
/// poll (one relaxed atomic load while untripped).
class CancelToken {
 public:
  /// \brief Trips the token with a reason. First caller wins; later calls
  /// are no-ops. `reason` must be kDeadlineExceeded or kCancelled.
  void Cancel(StatusCode reason) {
    StatusCode expected = StatusCode::kOk;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) != StatusCode::kOk;
  }

  /// \brief kOk while untripped, else the winning Cancel() reason.
  StatusCode reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  /// \brief OK while untripped, else the corresponding error Status.
  Status ToStatus() const {
    switch (reason()) {
      case StatusCode::kOk:
        return Status::OK();
      case StatusCode::kCancelled:
        return Status::Cancelled("request cancelled by client");
      default:
        return Status::DeadlineExceeded("request deadline exceeded");
    }
  }

 private:
  std::atomic<StatusCode> reason_{StatusCode::kOk};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

/// \brief Admission-control priority class of a request. Within a class
/// the admission queue is strictly FIFO; interactive requests are always
/// served before queued batch requests.
enum class Priority : uint8_t { kInteractive = 0, kBatch = 1 };

/// \brief One client request's identity as seen by the engine: deadline,
/// cancel token, priority.
struct RequestContext {
  using Clock = std::chrono::steady_clock;

  /// Cooperative cancellation flag; may be shared with the client side so
  /// it can cancel explicitly. Null means "not cancellable".
  CancelTokenPtr token;

  /// Absolute deadline; Clock::time_point::max() means none.
  Clock::time_point deadline = Clock::time_point::max();

  Priority priority = Priority::kInteractive;

  /// Per-request tracer (obs/trace.h); null means tracing is off. This
  /// field is ownership + transport only: the request's tracer stays
  /// alive on pool workers because TaskGroup::Spawn copies the context.
  /// The *ambient* tracing state (which tracer, which open span) is a
  /// separate thread-local installed with obs::ScopedTracer /
  /// obs::ScopedTraceContext — ScopedRequestContext deliberately leaves
  /// it alone so worker-side spans keep their cross-thread parent link.
  std::shared_ptr<obs::Tracer> tracer;

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  /// \brief Polls this context: trips the token once the deadline passes,
  /// then reports the token's status. OK means "keep going".
  Status Check() const {
    if (token == nullptr) return Status::OK();
    if (!token->cancelled() && has_deadline() &&
        Clock::now() >= deadline) {
      token->Cancel(StatusCode::kDeadlineExceeded);
    }
    return token->ToStatus();
  }

  /// \brief The calling thread's ambient request, or nullptr when the
  /// thread is not serving a request (library usage).
  static const RequestContext* Current();

  /// \brief Polls the ambient request; OK when there is none. This is the
  /// engine-wide cancellation point — cheap enough for per-morsel use.
  static Status CheckCurrent() {
    const RequestContext* rc = Current();
    return rc == nullptr ? Status::OK() : rc->Check();
  }

  /// \brief True if the ambient request is cancelled/expired (polling
  /// form of CheckCurrent for void contexts like ParallelFor's driver).
  static bool CurrentCancelled() {
    const RequestContext* rc = Current();
    return rc != nullptr && !rc->Check().ok();
  }

  /// \brief Convenience: a context whose deadline is `ms` from now (with
  /// a fresh token); ms <= 0 means no deadline but still cancellable.
  static RequestContext WithDeadlineMs(int64_t ms,
                                       Priority priority =
                                           Priority::kInteractive) {
    RequestContext rc;
    rc.token = std::make_shared<CancelToken>();
    rc.priority = priority;
    if (ms > 0) rc.deadline = Clock::now() + std::chrono::milliseconds(ms);
    return rc;
  }
};

/// \brief RAII thread-local override of RequestContext::Current(); scopes
/// nest exactly like ScopedExecContext. The context is copied (tokens are
/// shared_ptr, so every scope of one request trips together).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext ctx);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext ctx_;
  const RequestContext* prev_;
};

}  // namespace spindle
