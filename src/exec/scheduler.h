/// \file scheduler.h
/// \brief Work-stealing task scheduler for morsel-driven parallelism.
///
/// Design (see docs/parallel_execution.md for the full write-up):
///
///  - One process-wide Scheduler (Scheduler::Global(), a leaked singleton)
///    owns a pool of worker threads, lazily grown up to the largest thread
///    count any ExecContext has requested (capped at kMaxWorkers).
///  - Each worker has its own deque: it pushes/pops its back (LIFO, cache
///    friendly) and steals from the front of other workers (FIFO, coarse
///    work first). External threads inject into a shared queue.
///  - TaskGroup is the fork/join primitive: Spawn() tasks, then Wait().
///    Wait() *helps* — it executes queued tasks while waiting — so nested
///    parallelism (an operator spawning inside a task) cannot deadlock.
///  - ParallelFor decomposes [0, n) into fixed-size morsels and runs a
///    body(begin, end, morsel_index) over them on up to ctx.threads
///    threads (the caller participates). The morsel grid depends only on
///    morsel_rows and n — never on the thread count — so callers that
///    merge per-morsel partials in morsel order get deterministic results
///    for every thread count >= 2. With ctx.threads == 1 the body runs
///    inline on the calling thread, serially, in order.
///
/// Tasks spawned through TaskGroup capture the spawning thread's
/// ExecContext so nested operators see the same configuration.

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "exec/exec_context.h"

namespace spindle {

/// \brief A unit of work. Must not throw (the engine is Status-based);
/// TaskGroup additionally guards against stray exceptions by capturing
/// the first one and rethrowing it in Wait().
using Task = std::function<void()>;

/// \brief Process-wide work-stealing thread pool.
class Scheduler {
 public:
  /// Upper bound on pool size; worker slots are a fixed array so the pool
  /// can grow without invalidating concurrent stealers.
  static constexpr int kMaxWorkers = 256;

  /// \brief The shared process-wide scheduler. Created on first use and
  /// intentionally leaked (workers run until process exit) so static
  /// destruction order can never race an in-flight task.
  static Scheduler& Global();

  /// \brief Ensures at least `count` worker threads exist (capped at
  /// kMaxWorkers). Thread-safe; never shrinks.
  void EnsureWorkers(int count);

  /// \brief Current number of worker threads.
  int num_workers() const {
    return workers_started_.load(std::memory_order_acquire);
  }

  /// \brief Enqueues a task: onto the calling worker's own deque when
  /// called from a pool thread, else onto the shared injection queue.
  void Submit(Task task);

  /// \brief Runs one queued task if any is available (own deque first,
  /// then injection queue, then stealing). Returns false if no task was
  /// found. Used by helping waiters.
  bool RunOneTask();

 private:
  Scheduler() = default;
  ~Scheduler() = delete;  // leaked singleton

  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;  // back = hot end (own), front = steal end
    std::thread thread;
  };

  void WorkerLoop(int index);
  bool PopOwn(int index, Task& out);
  bool PopInjected(Task& out);
  bool Steal(int thief, Task& out);
  void NotifyOne();

  // Fixed-capacity slot array: slots [0, workers_started_) are live and
  // never move, so stealers may scan without locking the pool.
  std::array<std::unique_ptr<Worker>, kMaxWorkers> workers_;
  std::atomic<int> workers_started_{0};
  std::mutex grow_mu_;

  std::mutex inject_mu_;
  std::deque<Task> injected_;

  // Sleep/wake protocol: workers nap on cv_ when they find no work;
  // Submit bumps work_epoch_ under sleep_mu_ and notifies.
  std::mutex sleep_mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> work_epoch_{0};
};

/// \brief Fork/join scope: Spawn() any number of tasks, then Wait() for
/// all of them. Wait() helps execute queued work while blocked. The first
/// exception thrown by a task (none are expected in Spindle) is captured
/// and rethrown from Wait().
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& scheduler = Scheduler::Global());
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// \brief Schedules `task` on the pool. The task inherits the spawning
  /// thread's ExecContext.
  void Spawn(Task task);

  /// \brief Blocks until every spawned task has finished, executing queued
  /// tasks while it waits. Rethrows the first captured task exception.
  void Wait();

 private:
  // Heap-allocated and shared with every task wrapper so a TaskGroup can
  // never be destroyed out from under a still-running task.
  struct State {
    std::atomic<size_t> pending{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr first_error;  // guarded by mu
  };

  Scheduler& scheduler_;
  std::shared_ptr<State> state_;
};

/// \brief Runs body(begin, end, morsel_index) over [0, n) split into
/// ctx.morsel_rows-sized morsels, on up to ctx.threads threads including
/// the caller. Blocks until all morsels are done.
///
/// The decomposition is a fixed grid: morsel m covers
/// [m * morsel_rows, min((m+1) * morsel_rows, n)). Bodies run unordered
/// and concurrently on the parallel path; with ctx.threads == 1 they run
/// inline in ascending morsel order (the exact serial loop).
void ParallelFor(const ExecContext& ctx, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body);

/// \brief Number of morsels ParallelFor would use for `n` rows.
inline size_t NumMorsels(const ExecContext& ctx, size_t n) {
  return n == 0 ? 0 : (n + ctx.morsel_rows - 1) / ctx.morsel_rows;
}

}  // namespace spindle
