/// \file exec_context.h
/// \brief Execution configuration for the morsel-driven parallel engine.
///
/// An ExecContext says how much parallelism an operator may use and how
/// work is chopped into morsels (row ranges). The ambient context is
/// resolved per call site via ExecContext::Current(): a thread-local
/// override installed by ScopedExecContext if present, otherwise the
/// process-wide default. The default thread count comes from the
/// SPINDLE_THREADS environment variable (or hardware_concurrency() when
/// unset/0) and can be changed programmatically with SetDefaultThreads.
///
/// threads == 1 reproduces the serial engine exactly: every operator takes
/// its original single-threaded code path, so results are bit-identical to
/// pre-parallel Spindle and all existing tests remain deterministic.

#pragma once

#include <cstddef>

namespace spindle {

/// \brief Per-query execution knobs consulted by the parallel kernels.
struct ExecContext {
  /// Maximum number of threads an operator may use (including the calling
  /// thread). 1 means strictly serial execution on the calling thread.
  int threads = 1;

  /// Rows per morsel for ParallelFor-style row-range decomposition. The
  /// morsel grid depends only on this value and the row count — never on
  /// the thread count — so any result merged in morsel order is
  /// deterministic for every threads >= 2.
  size_t morsel_rows = 8192;

  ExecContext() = default;
  explicit ExecContext(int t) : threads(t) {}

  /// \brief True if an operator over `rows` rows should take its parallel
  /// path: more than one thread available and more than one morsel of work.
  bool ShouldParallelize(size_t rows) const {
    return threads > 1 && rows > morsel_rows;
  }

  /// \brief The ambient context of the calling thread: the innermost
  /// ScopedExecContext override, or the process default.
  static const ExecContext& Current();

  /// \brief The process default context (threads = DefaultThreads()).
  static ExecContext Default();

  /// \brief Default thread count: SPINDLE_THREADS env var if set to a
  /// positive integer, otherwise std::thread::hardware_concurrency()
  /// (minimum 1). Parsed once per process.
  static int DefaultThreads();

  /// \brief Overrides the process default thread count (0 restores the
  /// SPINDLE_THREADS / hardware default).
  static void SetDefaultThreads(int threads);
};

/// \brief RAII thread-local override of ExecContext::Current(). Scopes
/// nest; each scope restores the previous context on destruction.
///
/// \code
///   ScopedExecContext serial(ExecContext(1));  // force serial in scope
/// \endcode
class ScopedExecContext {
 public:
  explicit ScopedExecContext(ExecContext ctx);
  ~ScopedExecContext();

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext ctx_;
  const ExecContext* prev_;
};

}  // namespace spindle
