#include "exec/exec_context.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace spindle {

namespace {

int ParseEnvThreads() {
  const char* env = std::getenv("SPINDLE_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// 0 means "not overridden": fall back to the env/hardware default.
std::atomic<int>& DefaultOverride() {
  static std::atomic<int> v{0};
  return v;
}

const ExecContext*& CurrentOverride() {
  thread_local const ExecContext* tl = nullptr;
  return tl;
}

}  // namespace

int ExecContext::DefaultThreads() {
  int o = DefaultOverride().load(std::memory_order_relaxed);
  if (o > 0) return o;
  static const int env_default = ParseEnvThreads();
  return env_default;
}

void ExecContext::SetDefaultThreads(int threads) {
  DefaultOverride().store(threads > 0 ? threads : 0,
                          std::memory_order_relaxed);
}

ExecContext ExecContext::Default() { return ExecContext(DefaultThreads()); }

const ExecContext& ExecContext::Current() {
  const ExecContext* tl = CurrentOverride();
  if (tl != nullptr) return *tl;
  // Thread-local cache of the default so Current() can return a reference.
  thread_local ExecContext cached;
  cached.threads = DefaultThreads();
  return cached;
}

ScopedExecContext::ScopedExecContext(ExecContext ctx) : ctx_(ctx) {
  prev_ = CurrentOverride();
  CurrentOverride() = &ctx_;
}

ScopedExecContext::~ScopedExecContext() { CurrentOverride() = prev_; }

}  // namespace spindle
