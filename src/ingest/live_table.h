/// \file live_table.h
/// \brief Copy-on-write versioned serving state for one live collection.
///
/// A LiveTable owns the write path of live ingestion. Its unit of
/// consistency is the immutable CatalogVersion: the compacted base
/// relation, the main TextIndex over it, and the DeltaState of writes
/// accepted since the last compaction, all behind shared_ptr. Readers
/// Pin() the current version once and use it for their whole lifetime —
/// a torn read is impossible by construction, writers never mutate an
/// installed version. Writers serialize on a single mutex, copy the
/// delta, apply one op, and install a fresh version with a bumped
/// epoch.
///
/// When the delta crosses the compaction threshold, a background worker
/// rebuilds the merged relation and its TextIndex off-thread, then
/// atomically swaps them in: it pins a version and the write-log
/// length, builds outside any lock, and at install time replays the
/// log suffix that arrived while it was building (aborting if another
/// compaction won the race). Flush() runs the same rebuild
/// synchronously while holding the writer mutex — afterwards the delta
/// is empty and every query is served from the freshly built index
/// alone, which is what makes post-FLUSH results bit-identical to a
/// cold build over the same logical collection.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "ingest/delta_index.h"
#include "ir/searcher.h"
#include "ir/topk_pruning.h"
#include "obs/trace.h"

namespace spindle {
namespace ingest {

/// \brief One immutable, internally consistent serving state. Shared
/// structurally: a write shares the previous version's relation and
/// index; a compaction shares nothing but starts an empty delta.
struct CatalogVersion {
  /// Bumped on every accepted write — identifies logical content.
  uint64_t epoch = 0;
  /// Bumped on every compaction install — identifies the stored
  /// relation/index pair (delta ordinals are only valid within it).
  uint64_t storage_version = 0;
  RelationPtr docs;    ///< compacted base relation
  TextIndexPtr index;  ///< main index over `docs`
  /// docID -> row in `docs`, for re-tokenizing deleted documents.
  std::shared_ptr<const std::unordered_map<int64_t, size_t>> doc_rows;
  std::shared_ptr<const DeltaState> delta;
};
using CatalogVersionPtr = std::shared_ptr<const CatalogVersion>;

class LiveTable {
 public:
  struct Options {
    /// Writes (delta docs + deletions) that trigger a background
    /// compaction. Bounds the per-write copy cost and the delta scan.
    size_t compact_threshold = 1024;
    /// Disable to compact only on Flush() (tests, oracle comparisons).
    bool auto_compact = true;
  };

  /// \brief Callbacks into the owning service; all optional.
  struct Hooks {
    /// Runs after a compacted version is installed (from the worker
    /// thread or a Flush() caller): register `docs` under the catalog
    /// name and install `index` in the searcher cache.
    std::function<void(const RelationPtr& docs, const TextIndexPtr& index)>
        on_install;
    /// Per-compaction accounting: wall time and merged collection size.
    std::function<void(uint64_t compaction_us, size_t num_docs)>
        on_compaction;
    /// When set, each compaction runs under a fresh tracer (emitting an
    /// "ingest/compaction" span) that is handed back here on completion.
    std::function<std::shared_ptr<obs::Tracer>()> make_tracer;
    std::function<void(const std::shared_ptr<obs::Tracer>&)> on_trace;
  };

  /// \brief Wraps an already-registered collection. `docs` must have
  /// (docID: int64, data: string) columns and `index` must be the
  /// index over `docs` under `analyzer`.
  static Result<std::unique_ptr<LiveTable>> Make(std::string name,
                                                 RelationPtr docs,
                                                 TextIndexPtr index,
                                                 AnalyzerOptions analyzer,
                                                 Options options,
                                                 Hooks hooks);
  ~LiveTable();

  LiveTable(const LiveTable&) = delete;
  LiveTable& operator=(const LiveTable&) = delete;

  const std::string& name() const { return name_; }

  /// \brief The current version; the returned pointer stays internally
  /// consistent forever. Wait-free for practical purposes (one mutex
  /// protecting a shared_ptr copy).
  CatalogVersionPtr Pin() const;

  /// \brief Validates and applies one write: ADD requires the docID not
  /// be live (else AlreadyExists), UPDATE/DELETE require it live (else
  /// NotFound). Returns the new epoch. Thread-safe; writers serialize.
  Result<uint64_t> Apply(const WriteOp& op);

  /// \brief Forced compaction + quiesce: when it returns, the delta is
  /// empty, the compacted relation/index are installed (hooks ran) and
  /// every subsequent query is served from the main index alone.
  /// No-op on a clean table.
  Status Flush();

  /// \brief Two-lane live search over a pinned version: fused top-k on
  /// the main index (deletions masked, live statistics overriding) +
  /// exhaustive delta scoring, merged under the total order (score
  /// desc, docID asc). Bit-identical to a cold build over the merged
  /// logical collection. `options.top_k == 0` returns all matching
  /// documents; phrase boost is rejected while the delta is dirty.
  Result<RelationPtr> Search(const CatalogVersionPtr& version,
                             const std::string& query,
                             const SearchOptions& options,
                             PruningStats* pstats) const;

  struct Stats {
    uint64_t epoch = 0;
    uint64_t storage_version = 0;
    uint64_t delta_docs = 0;
    uint64_t deleted_docs = 0;
    uint64_t compactions = 0;
    uint64_t compaction_us = 0;  ///< cumulative build wall time
  };
  Stats stats() const;

 private:
  LiveTable(std::string name, AnalyzerOptions analyzer_options,
            Analyzer analyzer, Options options, Hooks hooks);

  void Install(CatalogVersionPtr next);

  /// Applies `op` on top of `state` (already copied) against the given
  /// main index/relation — shared by the write path and the compaction
  /// log replay.
  Status ApplyToState(DeltaState* state, const WriteOp& op,
                      const CatalogVersion& base) const;

  /// Builds the merged relation + index for `from`'s full delta.
  /// Runs outside all locks.
  Result<std::pair<RelationPtr, TextIndexPtr>> BuildCompacted(
      const CatalogVersionPtr& from) const;

  /// One compaction pass: pin, build, install-with-replay. Returns
  /// false if the pass was abandoned (clean delta or lost race).
  bool CompactOnce();

  void WorkerLoop();

  static std::shared_ptr<const std::unordered_map<int64_t, size_t>>
  BuildDocRows(const Relation& docs, size_t id_col);

  const std::string name_;
  const AnalyzerOptions analyzer_options_;
  const Analyzer analyzer_;
  const Options options_;
  const Hooks hooks_;
  size_t id_col_ = 0;
  size_t data_col_ = 0;

  mutable std::mutex version_mu_;  ///< guards current_ load/store only
  CatalogVersionPtr current_;

  std::mutex write_mu_;  ///< serializes Apply / Flush / install
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compaction_us_{0};

  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool compact_requested_ = false;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace ingest
}  // namespace spindle
