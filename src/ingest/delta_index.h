/// \file delta_index.h
/// \brief The mutable side of live ingestion: a small in-memory inverted
/// structure over newly added/updated documents plus a deleted-doc set.
///
/// Following the ODYS / EMBANKS blueprint, writes never touch the
/// immutable main TextIndex. Each accepted ADD/UPDATE/DELETE produces a
/// new immutable DeltaState (copy-on-write, installed by LiveTable as
/// part of a new CatalogVersion); queries merge the delta at search
/// time: fused top-k over the main index with deletions masked and
/// *live* statistics overriding the index's own, plus an exhaustive
/// scoring pass over the delta documents. Because the statistics are
/// maintained exactly (writes tokenize under the collection's analyzer,
/// deletes re-tokenize the stored text) and the delta scorer replicates
/// the kernel's expression shapes, merged results are bit-identical to
/// a cold build over the same logical collection — the property FLUSH
/// quiesces into and tests/ingest_test.cc checks per write.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/indexing.h"
#include "ir/searcher.h"
#include "storage/relation.h"
#include "text/analyzer.h"

namespace spindle {
namespace ingest {

/// \brief One accepted write. `text` is empty for kDelete.
struct WriteOp {
  enum class Kind { kAdd, kUpdate, kDelete };
  Kind kind = Kind::kAdd;
  int64_t doc_id = 0;
  std::string text;
};

/// \brief A write command parsed from its line form
/// ("ADD <collection> <docID> <text...>", "UPDATE ..." likewise,
/// "DELETE <collection> <docID>", see docs/ingestion.md).
struct ParsedWrite {
  std::string collection;
  WriteOp op;
};

/// \brief Parses one write line; rejects unknown verbs and malformed
/// docIDs. FLUSH is not a write (no document payload) and is not
/// accepted here.
Result<ParsedWrite> ParseWriteCommand(const std::string& line);

/// \brief A delta document: its analyzed length (token count, the
/// doc_len the index build would compute) and per-term frequencies,
/// sorted by term for binary-search probes.
struct DeltaDoc {
  int64_t len = 0;
  std::vector<std::pair<std::string, int64_t>> terms;  ///< (term, tf) sorted
};

/// \brief Per-term statistic deltas relative to the main index: how many
/// live documents gained/lost the term (df) and the token-count change
/// (cf). Negative values come from deletions of main-index documents.
struct TermDelta {
  int64_t df = 0;
  int64_t cf = 0;
};

/// \brief Immutable snapshot of the mutable side. Writers copy the
/// current state, apply one op, and install the copy; readers share the
/// snapshot through their pinned CatalogVersion for their whole
/// lifetime. Size is bounded by the compaction threshold.
struct DeltaState {
  /// Documents searchable from the delta (adds + the new text of
  /// updates), keyed by docID — iteration order is docID ascending,
  /// which the exhaustive delta scorer relies on.
  std::map<int64_t, DeltaDoc> added;
  /// Main-index docIDs masked out of the main lane (deletes + the old
  /// identity of updates).
  std::set<int64_t> deleted;
  /// The same deletions as sorted main-index *ordinals*, the form
  /// RankTopK's deletion mask consumes. Valid only against the
  /// CatalogVersion's own main index.
  std::vector<uint32_t> deleted_ords;
  /// Exact per-term df/cf deltas and collection totals vs. the main
  /// index (adds positive, main-doc deletions negative).
  std::map<std::string, TermDelta> terms;
  int64_t postings_delta = 0;  ///< signed token-count change
  /// Every op accepted since the last compaction, in order. A
  /// background compaction pins the log length with its version and
  /// replays the suffix that arrived while it was building.
  std::vector<WriteOp> log;

  bool dirty() const { return !added.empty() || !deleted.empty(); }
  size_t delta_docs() const { return added.size(); }
  size_t deleted_docs() const { return deleted.size(); }

  /// \brief Live collection statistics: the main index's statistics
  /// with the delta folded in, using the exact expression shapes of
  /// TextIndex::Build (integer totals, avg = total/num in double
  /// arithmetic, 0.0 when empty).
  CollectionStats LiveStats(const CollectionStats& base) const;

  /// \brief Live df/cf for one analyzed term given its main-index
  /// values (0/0 when absent from the main dictionary).
  TermDelta LiveTerm(const std::string& term, int64_t main_df,
                     int64_t main_cf) const;
};

/// \brief Analyzes `text` into a DeltaDoc (token count + sorted
/// per-term tf) under the collection's analyzer — the same token stream
/// TokenizeRelation feeds the index build.
DeltaDoc TokenizeDoc(const Analyzer& analyzer, std::string_view text);

/// \brief Locates the (docID: int64, data: string) columns of a
/// collection relation by name, falling back to the first int64 /
/// string columns — mirroring the index build's column resolution.
Status FindDocColumns(const Relation& docs, size_t* id_col,
                      size_t* data_col);

/// \brief One scored delta document.
struct DeltaCand {
  int64_t doc_id = 0;
  double score = 0.0;
};

/// \brief Exhaustively scores the delta documents for one query.
///
/// `qtokens` are the analyzed query-term occurrences that survive the
/// *live* dictionary (live df > 0), in query order with duplicates
/// kept; `df`/`cf` are their live values, parallel to `qtokens`; `live`
/// is the live collection statistics. Every expression replicates the
/// fused kernel's shapes (which replicate ranking.cc's Expr trees), so
/// a delta document's score is the bit-identical double a cold build
/// over the merged collection computes for it. Documents matching no
/// query term are not candidates, exactly as in the exhaustive join.
std::vector<DeltaCand> ScoreDelta(const DeltaState& delta,
                                  const std::vector<std::string>& qtokens,
                                  const std::vector<int64_t>& df,
                                  const std::vector<int64_t>& cf,
                                  const CollectionStats& live,
                                  const SearchOptions& options);

/// \brief Materializes the merged logical collection: base rows minus
/// `deleted`, plus `added` texts, as a plain (docID: int64,
/// data: string) relation sorted by docID. Compaction and the cold
/// oracle (--apply-writes, tests) share this one builder, so both sides
/// of the byte-identity check index the exact same relation.
Result<RelationPtr> BuildMergedRelation(
    const RelationPtr& docs, const std::set<int64_t>& deleted,
    const std::map<int64_t, std::string>& added);

/// \brief Cold-applies a validated write sequence to a collection
/// relation (ADD of a live docID fails AlreadyExists, UPDATE/DELETE of
/// an absent one fails NotFound — the same rules the live path
/// enforces) and returns the merged relation via BuildMergedRelation.
Result<RelationPtr> ApplyWritesCold(const RelationPtr& docs,
                                    const std::vector<WriteOp>& ops);

}  // namespace ingest
}  // namespace spindle
