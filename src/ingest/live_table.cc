#include "ingest/live_table.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace spindle {
namespace ingest {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Ordinal of `doc_id` in the impact index's docID-sorted doc list, or
/// num_docs() when absent.
uint32_t OrdinalOf(const ImpactIndex& impact, int64_t doc_id) {
  uint32_t lo = 0, hi = static_cast<uint32_t>(impact.num_docs());
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (impact.doc_id(mid) < doc_id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < impact.num_docs() && impact.doc_id(lo) == doc_id) return lo;
  return static_cast<uint32_t>(impact.num_docs());
}

/// Subtracts one delta document's statistics back out (update/delete of
/// a document that only ever lived in the delta).
void SubtractDeltaDoc(DeltaState* state, const DeltaDoc& doc) {
  for (const auto& [term, tf] : doc.terms) {
    // The term may be absent: entries are erased whenever df and cf
    // cancel to zero (an added doc and a deleted base doc can cancel
    // each other exactly), so re-insert and go negative from zero.
    TermDelta& td = state->terms[term];
    td.df -= 1;
    td.cf -= tf;
    if (td.df == 0 && td.cf == 0) state->terms.erase(term);
  }
  state->postings_delta -= doc.len;
}

void AddDeltaDoc(DeltaState* state, const DeltaDoc& doc) {
  for (const auto& [term, tf] : doc.terms) {
    TermDelta& td = state->terms[term];
    td.df += 1;
    td.cf += tf;
    if (td.df == 0 && td.cf == 0) state->terms.erase(term);
  }
  state->postings_delta += doc.len;
}

}  // namespace

Result<std::unique_ptr<LiveTable>> LiveTable::Make(std::string name,
                                                   RelationPtr docs,
                                                   TextIndexPtr index,
                                                   AnalyzerOptions analyzer,
                                                   Options options,
                                                   Hooks hooks) {
  if (docs == nullptr || index == nullptr) {
    return Status::InvalidArgument("live table needs a relation and index");
  }
  SPINDLE_ASSIGN_OR_RETURN(Analyzer an, Analyzer::Make(analyzer));
  std::unique_ptr<LiveTable> table(
      new LiveTable(std::move(name), std::move(analyzer), std::move(an),
                    options, std::move(hooks)));
  SPINDLE_RETURN_IF_ERROR(
      FindDocColumns(*docs, &table->id_col_, &table->data_col_));
  auto v = std::make_shared<CatalogVersion>();
  v->epoch = 0;
  v->storage_version = 1;
  v->docs = std::move(docs);
  v->index = std::move(index);
  v->doc_rows = BuildDocRows(*v->docs, table->id_col_);
  v->delta = std::make_shared<DeltaState>();
  table->current_ = std::move(v);
  return table;
}

LiveTable::LiveTable(std::string name, AnalyzerOptions analyzer_options,
                     Analyzer analyzer, Options options, Hooks hooks)
    : name_(std::move(name)),
      analyzer_options_(std::move(analyzer_options)),
      analyzer_(std::move(analyzer)),
      options_(options),
      hooks_(std::move(hooks)) {
  if (options_.auto_compact) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

LiveTable::~LiveTable() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    shutdown_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_ptr<const std::unordered_map<int64_t, size_t>>
LiveTable::BuildDocRows(const Relation& docs, size_t id_col) {
  auto rows = std::make_shared<std::unordered_map<int64_t, size_t>>();
  rows->reserve(docs.num_rows());
  for (size_t r = 0; r < docs.num_rows(); ++r) {
    (*rows)[docs.column(id_col).Int64At(r)] = r;
  }
  return rows;
}

CatalogVersionPtr LiveTable::Pin() const {
  std::lock_guard<std::mutex> lock(version_mu_);
  return current_;
}

void LiveTable::Install(CatalogVersionPtr next) {
  std::lock_guard<std::mutex> lock(version_mu_);
  current_ = std::move(next);
}

Status LiveTable::ApplyToState(DeltaState* state, const WriteOp& op,
                               const CatalogVersion& base) const {
  const int64_t id = op.doc_id;
  auto added_it = state->added.find(id);
  const bool in_added = added_it != state->added.end();
  const bool in_base = base.doc_rows->count(id) > 0 &&
                       state->deleted.count(id) == 0;
  const bool live = in_added || in_base;

  auto delete_base_doc = [&]() {
    // Re-tokenize the stored text so the df/cf/postings deltas are the
    // exact negatives of what the document contributed at build time.
    const size_t row = base.doc_rows->at(id);
    DeltaDoc doc =
        TokenizeDoc(analyzer_, base.docs->column(data_col_).StringAt(row));
    for (const auto& [term, tf] : doc.terms) {
      TermDelta& td = state->terms[term];
      td.df -= 1;
      td.cf -= tf;
      if (td.df == 0 && td.cf == 0) state->terms.erase(term);
    }
    state->postings_delta -= doc.len;
    state->deleted.insert(id);
    const uint32_t ord = OrdinalOf(base.index->impact(), id);
    if (ord < base.index->impact().num_docs()) {
      auto pos = std::lower_bound(state->deleted_ords.begin(),
                                  state->deleted_ords.end(), ord);
      state->deleted_ords.insert(pos, ord);
    }
  };

  switch (op.kind) {
    case WriteOp::Kind::kAdd: {
      if (live) {
        return Status::AlreadyExists("docID " + std::to_string(id) +
                                     " is live; UPDATE to replace it");
      }
      DeltaDoc doc = TokenizeDoc(analyzer_, op.text);
      AddDeltaDoc(state, doc);
      state->added.emplace(id, std::move(doc));
      break;
    }
    case WriteOp::Kind::kUpdate: {
      if (!live) {
        return Status::NotFound("docID " + std::to_string(id) +
                                " is not live; ADD it first");
      }
      if (in_added) {
        SubtractDeltaDoc(state, added_it->second);
        state->added.erase(added_it);
      } else {
        delete_base_doc();
      }
      DeltaDoc doc = TokenizeDoc(analyzer_, op.text);
      AddDeltaDoc(state, doc);
      state->added.emplace(id, std::move(doc));
      break;
    }
    case WriteOp::Kind::kDelete: {
      if (!live) {
        return Status::NotFound("docID " + std::to_string(id) +
                                " is not live");
      }
      if (in_added) {
        SubtractDeltaDoc(state, added_it->second);
        state->added.erase(added_it);
      } else {
        delete_base_doc();
      }
      break;
    }
  }
  state->log.push_back(op);
  return Status::OK();
}

Result<uint64_t> LiveTable::Apply(const WriteOp& op) {
  std::lock_guard<std::mutex> lock(write_mu_);
  CatalogVersionPtr base = Pin();
  auto state = std::make_shared<DeltaState>(*base->delta);
  SPINDLE_RETURN_IF_ERROR(ApplyToState(state.get(), op, *base));

  auto next = std::make_shared<CatalogVersion>();
  next->epoch = base->epoch + 1;
  next->storage_version = base->storage_version;
  next->docs = base->docs;
  next->index = base->index;
  next->doc_rows = base->doc_rows;
  const bool want_compact =
      state->delta_docs() + state->deleted_docs() >=
      options_.compact_threshold;
  next->delta = std::move(state);
  const uint64_t epoch = next->epoch;
  Install(std::move(next));

  if (options_.auto_compact && want_compact) {
    {
      std::lock_guard<std::mutex> wlock(worker_mu_);
      compact_requested_ = true;
    }
    worker_cv_.notify_one();
  }
  return epoch;
}

Result<std::pair<RelationPtr, TextIndexPtr>> LiveTable::BuildCompacted(
    const CatalogVersionPtr& from) const {
  std::map<int64_t, std::string> added;
  // Rebuild the raw text of every delta document from the write log:
  // the DeltaState holds analyzed term vectors, but the merged relation
  // must carry the original text (later analyzers may differ and
  // SaveSnapshot persists the relation). The log has every op since the
  // last compaction in order, so folding it yields exactly the delta's
  // added set.
  for (const WriteOp& op : from->delta->log) {
    switch (op.kind) {
      case WriteOp::Kind::kAdd:
      case WriteOp::Kind::kUpdate:
        added[op.doc_id] = op.text;
        break;
      case WriteOp::Kind::kDelete:
        added.erase(op.doc_id);
        break;
    }
  }
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr merged,
      BuildMergedRelation(from->docs, from->delta->deleted, added));
  SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                           TextIndex::Build(merged, analyzer_));
  return std::make_pair(std::move(merged), std::move(index));
}

bool LiveTable::CompactOnce() {
  CatalogVersionPtr v0 = Pin();
  if (!v0->delta->dirty() && v0->delta->log.empty()) return false;
  const size_t log_mark = v0->delta->log.size();

  std::shared_ptr<obs::Tracer> tracer =
      hooks_.make_tracer ? hooks_.make_tracer() : nullptr;
  const uint64_t t0 = NowUs();
  bool installed = false;
  size_t merged_docs = 0;
  {
    obs::ScopedTracer scope(tracer.get());
    obs::Span span("ingest", "compaction");
    auto built = BuildCompacted(v0);
    if (!built.ok()) return false;
    RelationPtr merged = std::move(built.ValueOrDie().first);
    TextIndexPtr index = std::move(built.ValueOrDie().second);
    merged_docs = merged->num_rows();
    if (span.active()) {
      span.Add("docs", static_cast<int64_t>(merged_docs));
    }

    std::lock_guard<std::mutex> lock(write_mu_);
    CatalogVersionPtr cur = Pin();
    // Another install (a FLUSH) won the race: this build is against a
    // stale storage version, discard it.
    if (cur->storage_version != v0->storage_version) return false;

    auto next = std::make_shared<CatalogVersion>();
    next->epoch = cur->epoch;  // same logical content
    next->storage_version = cur->storage_version + 1;
    next->docs = std::move(merged);
    next->index = std::move(index);
    next->doc_rows = BuildDocRows(*next->docs, id_col_);
    // Replay the writes that arrived while the build ran onto a fresh
    // delta over the new main index.
    if (span.active()) {
      span.Add("replayed",
               static_cast<int64_t>(cur->delta->log.size() - log_mark));
    }
    auto replayed = std::make_shared<DeltaState>();
    for (size_t i = log_mark; i < cur->delta->log.size(); ++i) {
      if (!ApplyToState(replayed.get(), cur->delta->log[i], *next).ok()) {
        // A replay op that validated against the old state must
        // validate against the identical logical content; if it does
        // not, keep serving the current version rather than installing
        // a divergent one.
        return false;
      }
    }
    next->delta = std::move(replayed);
    // Register the compacted relation/index (catalog + searcher cache)
    // BEFORE publishing the new version: once a reader observes a clean
    // delta it falls through to the ordinary catalog-backed path, so the
    // catalog must already hold the merged collection. A reader that
    // lands in between still sees the old dirty version and takes the
    // two-lane path — both orders describe the same logical collection.
    if (hooks_.on_install) hooks_.on_install(next->docs, next->index);
    Install(std::move(next));
    installed = true;
  }
  const uint64_t took = NowUs() - t0;
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compaction_us_.fetch_add(took, std::memory_order_relaxed);
  if (hooks_.on_compaction) hooks_.on_compaction(took, merged_docs);
  if (tracer != nullptr && hooks_.on_trace) hooks_.on_trace(tracer);
  return installed;
}

void LiveTable::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(worker_mu_);
      worker_cv_.wait(lock,
                      [this] { return compact_requested_ || shutdown_; });
      if (shutdown_) return;
      compact_requested_ = false;
    }
    CompactOnce();
  }
}

Status LiveTable::Flush() {
  std::lock_guard<std::mutex> lock(write_mu_);
  CatalogVersionPtr cur = Pin();
  if (!cur->delta->dirty() && cur->delta->log.empty()) return Status::OK();

  std::shared_ptr<obs::Tracer> tracer =
      hooks_.make_tracer ? hooks_.make_tracer() : nullptr;
  const uint64_t t0 = NowUs();
  size_t merged_docs = 0;
  {
    obs::ScopedTracer scope(tracer.get());
    obs::Span span("ingest", "compaction");
    // write_mu_ is held: no writes can interleave, one pass quiesces.
    SPINDLE_ASSIGN_OR_RETURN(auto built, BuildCompacted(cur));
    merged_docs = built.first->num_rows();
    if (span.active()) {
      span.Add("docs", static_cast<int64_t>(merged_docs));
      span.Note("mode", "flush");
    }
    auto next = std::make_shared<CatalogVersion>();
    next->epoch = cur->epoch;
    next->storage_version = cur->storage_version + 1;
    next->docs = std::move(built.first);
    next->index = std::move(built.second);
    next->doc_rows = BuildDocRows(*next->docs, id_col_);
    next->delta = std::make_shared<DeltaState>();
    // Same ordering as CompactOnce: catalog/searcher first, then the
    // version publish, so a clean delta always implies the catalog
    // already serves the merged collection.
    if (hooks_.on_install) hooks_.on_install(next->docs, next->index);
    Install(std::move(next));
  }
  const uint64_t took = NowUs() - t0;
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compaction_us_.fetch_add(took, std::memory_order_relaxed);
  if (hooks_.on_compaction) hooks_.on_compaction(took, merged_docs);
  if (tracer != nullptr && hooks_.on_trace) hooks_.on_trace(tracer);
  return Status::OK();
}

Result<RelationPtr> LiveTable::Search(const CatalogVersionPtr& version,
                                      const std::string& query,
                                      const SearchOptions& options,
                                      PruningStats* pstats) const {
  const DeltaState& delta = *version->delta;
  if (options.phrase_boost > 0.0 && delta.dirty()) {
    return Status::InvalidArgument(
        "phrase boost is not supported with pending live writes; "
        "FLUSH first");
  }

  // Analyze once, then resolve each token occurrence against the LIVE
  // dictionary: survivors are tokens some live document contains
  // (live df > 0), in query order with duplicates kept — exactly the
  // qterms a cold build over the merged collection would produce.
  std::vector<Token> analyzed = analyzer_.Analyze(query);
  std::vector<std::string> tokens;
  tokens.reserve(analyzed.size());
  for (Token& t : analyzed) tokens.push_back(std::move(t.text));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr all_terms,
                           version->index->MapQueryTerms(tokens));
  const ImpactIndex& impact = version->index->impact();
  std::vector<std::string> survivors;
  std::vector<int64_t> live_df, live_cf;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const int64_t tid = all_terms->column(0).Int64At(i);
    int64_t main_df = 0, main_cf = 0;
    if (tid > 0) {
      const ImpactIndex::TermMeta& meta = impact.term_meta(tid);
      main_df = meta.df;
      main_cf = meta.cf;
    }
    TermDelta live = delta.LiveTerm(tokens[i], main_df, main_cf);
    if (live.df > 0) {
      survivors.push_back(tokens[i]);
      live_df.push_back(live.df);
      live_cf.push_back(live.cf);
    }
  }

  QueryStatsOverride ov;
  ov.collection = delta.LiveStats(version->index->stats());
  ov.df = live_df;
  ov.cf = live_cf;

  // Main lane: fused top-k with live statistics and deletions masked.
  // k == 0 means "all matching documents" — run the main lane at the
  // full document count and skip the final cut.
  const bool all_docs = options.top_k == 0;
  SearchOptions main_opts = options;
  if (all_docs) main_opts.top_k = impact.num_docs();
  PruningStats local;
  std::vector<std::pair<double, int64_t>> cands;  // (score, docID)
  if (!survivors.empty() && main_opts.top_k > 0 && impact.num_docs() > 0) {
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr qterms,
                             version->index->MapQueryTerms(survivors));
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr main,
        RankTopK(*version->index, qterms, main_opts, &local, &ov,
                 delta.deleted_ords.empty() ? nullptr
                                            : &delta.deleted_ords));
    cands.reserve(main->num_rows());
    for (size_t r = 0; r < main->num_rows(); ++r) {
      cands.emplace_back(main->column(1).Float64At(r),
                         main->column(0).Int64At(r));
    }
  }

  // Delta lane: exhaustive scoring of the added documents.
  std::vector<DeltaCand> dcands =
      ScoreDelta(delta, survivors, live_df, live_cf, ov.collection,
                 options);
  local.docs_scored += dcands.size();
  cands.reserve(cands.size() + dcands.size());
  for (const DeltaCand& c : dcands) cands.emplace_back(c.score, c.doc_id);

  // Merge under the kernel's total order (score desc, docID asc). The
  // union's top-k main-side members are within the main lane's top-k,
  // so cutting the merged list to k is exact.
  std::sort(cands.begin(), cands.end(),
            [](const std::pair<double, int64_t>& a,
               const std::pair<double, int64_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const size_t n =
      all_docs ? cands.size() : std::min(options.top_k, cands.size());
  std::vector<int64_t> out_ids(n);
  std::vector<double> out_scores(n);
  for (size_t i = 0; i < n; ++i) {
    out_ids[i] = cands[i].second;
    out_scores[i] = cands[i].first;
  }
  if (pstats != nullptr) {
    pstats->docs_scored += local.docs_scored;
    pstats->docs_skipped += local.docs_skipped;
    pstats->blocks_skipped += local.blocks_skipped;
    pstats->blocks_decoded += local.blocks_decoded;
    pstats->decode_bytes += local.decode_bytes;
  }
  Schema schema(
      {{"docID", DataType::kInt64}, {"score", DataType::kFloat64}});
  return Relation::Make(schema, {Column::MakeInt64(std::move(out_ids)),
                                 Column::MakeFloat64(std::move(out_scores))});
}

LiveTable::Stats LiveTable::stats() const {
  CatalogVersionPtr v = Pin();
  Stats s;
  s.epoch = v->epoch;
  s.storage_version = v->storage_version;
  s.delta_docs = v->delta->delta_docs();
  s.deleted_docs = v->delta->deleted_docs();
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.compaction_us = compaction_us_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ingest
}  // namespace spindle
