#include "ingest/delta_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace spindle {
namespace ingest {

namespace {

/// Splits the leading space-delimited word off `rest`.
std::string TakeWord(std::string& rest) {
  size_t start = rest.find_first_not_of(' ');
  if (start == std::string::npos) {
    rest.clear();
    return "";
  }
  size_t end = rest.find(' ', start);
  std::string word = end == std::string::npos
                         ? rest.substr(start)
                         : rest.substr(start, end - start);
  rest = end == std::string::npos ? "" : rest.substr(end + 1);
  return word;
}

Result<int64_t> ParseDocId(const std::string& word) {
  if (word.empty()) return Status::ParseError("missing docID");
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(word.c_str(), &end, 10);
  if (errno != 0 || end == word.c_str() || *end != '\0') {
    return Status::ParseError("bad docID '" + word + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<ParsedWrite> ParseWriteCommand(const std::string& line) {
  std::string rest = line;
  std::string verb = TakeWord(rest);
  ParsedWrite out;
  if (verb == "ADD") {
    out.op.kind = WriteOp::Kind::kAdd;
  } else if (verb == "UPDATE") {
    out.op.kind = WriteOp::Kind::kUpdate;
  } else if (verb == "DELETE") {
    out.op.kind = WriteOp::Kind::kDelete;
  } else {
    return Status::ParseError("unknown write verb '" + verb + "'");
  }
  out.collection = TakeWord(rest);
  if (out.collection.empty()) {
    return Status::ParseError(verb + " requires a collection name");
  }
  SPINDLE_ASSIGN_OR_RETURN(out.op.doc_id, ParseDocId(TakeWord(rest)));
  if (out.op.kind == WriteOp::Kind::kDelete) {
    if (!rest.empty()) {
      return Status::ParseError("DELETE takes no document text");
    }
  } else {
    // The remainder — possibly empty — is the document text verbatim.
    out.op.text = rest;
  }
  return out;
}

CollectionStats DeltaState::LiveStats(const CollectionStats& base) const {
  CollectionStats live;
  live.num_docs = base.num_docs -
                  static_cast<int64_t>(deleted.size()) +
                  static_cast<int64_t>(added.size());
  live.total_postings = base.total_postings + postings_delta;
  // The exact expression shape of TextIndex::Build, so model setup sees
  // the identical double a cold build computes.
  live.avg_doc_len = live.num_docs == 0
                         ? 0.0
                         : static_cast<double>(live.total_postings) /
                               static_cast<double>(live.num_docs);
  live.num_terms = base.num_terms;  // informational; not used in scoring
  return live;
}

TermDelta DeltaState::LiveTerm(const std::string& term, int64_t main_df,
                               int64_t main_cf) const {
  TermDelta live{main_df, main_cf};
  auto it = terms.find(term);
  if (it != terms.end()) {
    live.df += it->second.df;
    live.cf += it->second.cf;
  }
  return live;
}

DeltaDoc TokenizeDoc(const Analyzer& analyzer, std::string_view text) {
  DeltaDoc doc;
  std::vector<Token> tokens = analyzer.Analyze(text);
  doc.len = static_cast<int64_t>(tokens.size());
  std::vector<std::string> terms;
  terms.reserve(tokens.size());
  for (Token& t : tokens) terms.push_back(std::move(t.text));
  std::sort(terms.begin(), terms.end());
  for (size_t i = 0; i < terms.size();) {
    size_t j = i;
    while (j < terms.size() && terms[j] == terms[i]) ++j;
    doc.terms.emplace_back(std::move(terms[i]),
                           static_cast<int64_t>(j - i));
    i = j;
  }
  return doc;
}

Status FindDocColumns(const Relation& docs, size_t* id_col,
                      size_t* data_col) {
  const Schema& schema = docs.schema();
  auto id = schema.FindField("docID");
  auto data = schema.FindField("data");
  if (id && docs.column(*id).type() == DataType::kInt64 && data &&
      docs.column(*data).type() == DataType::kString) {
    *id_col = *id;
    *data_col = *data;
    return Status::OK();
  }
  bool have_id = false, have_data = false;
  for (size_t c = 0; c < docs.num_columns(); ++c) {
    if (!have_id && docs.column(c).type() == DataType::kInt64) {
      *id_col = c;
      have_id = true;
    } else if (!have_data && docs.column(c).type() == DataType::kString) {
      *data_col = c;
      have_data = true;
    }
  }
  if (!have_id || !have_data) {
    return Status::InvalidArgument(
        "live collection needs (docID: int64, data: string) columns, got " +
        schema.ToString());
  }
  return Status::OK();
}

std::vector<DeltaCand> ScoreDelta(const DeltaState& delta,
                                  const std::vector<std::string>& qtokens,
                                  const std::vector<int64_t>& df,
                                  const std::vector<int64_t>& cf,
                                  const CollectionStats& live,
                                  const SearchOptions& options) {
  std::vector<DeltaCand> out;
  if (delta.added.empty() || qtokens.empty()) return out;

  // Model context with the kernel's degenerate-case floors
  // (avgdl/N/total at 1) — identical doubles to RankTopK's setup over a
  // cold index whose CollectionStats equal `live`.
  const double avgdl = live.avg_doc_len > 0 ? live.avg_doc_len : 1.0;
  const double n =
      static_cast<double>(live.num_docs > 0 ? live.num_docs : 1);
  const double total = static_cast<double>(
      live.total_postings > 0 ? live.total_postings : 1);
  const double k1 = options.bm25.k1;
  const double b = options.bm25.b;
  const double one_minus_b = 1.0 - options.bm25.b;
  const double mu = options.dirichlet.mu;
  const double ratio = options.jm.lambda > 0.0 && options.jm.lambda < 1.0
                           ? (1.0 - options.jm.lambda) / options.jm.lambda
                           : 0.0;
  const double qlen = static_cast<double>(qtokens.size());

  // Per-occurrence term statistics in the override's exact expression
  // shapes: idf = ln((N - df + 0.5) / (df + 0.5)) with the *unfloored*
  // N (as in the kernel's override path), plain idf = ln(N/df) with the
  // floored one.
  const double n_docs = static_cast<double>(live.num_docs);
  const size_t nq = qtokens.size();
  std::vector<double> idf(nq), plain_idf(nq, 0.0), cfd(nq);
  for (size_t q = 0; q < nq; ++q) {
    const double dfd = static_cast<double>(df[q]);
    idf[q] = std::log(((n_docs - dfd) + 0.5) / (dfd + 0.5));
    cfd[q] = static_cast<double>(cf[q]);
    if (options.model == RankModel::kTfIdf) {
      plain_idf[q] = std::log(n / dfd);
    }
  }

  for (const auto& [doc_id, doc] : delta.added) {
    const double len = static_cast<double>(doc.len);
    double score = 0.0;
    bool any = false;
    // Canonical fold: per-occurrence contributions summed in query
    // order — the association order of the exhaustive GroupAggregate
    // and of the kernel's present-occurrence fold.
    for (size_t q = 0; q < nq; ++q) {
      auto it = std::lower_bound(
          doc.terms.begin(), doc.terms.end(), qtokens[q],
          [](const std::pair<std::string, int64_t>& a,
             const std::string& term) { return a.first < term; });
      if (it == doc.terms.end() || it->first != qtokens[q]) continue;
      const double tf = static_cast<double>(it->second);
      double contrib = 0.0;
      switch (options.model) {
        case RankModel::kBm25:
          contrib =
              ((tf / (tf + (k1 * (one_minus_b + (b * (len / avgdl)))))) *
               idf[q]) *
              1.0;
          break;
        case RankModel::kTfIdf:
          contrib = ((1.0 + std::log(tf)) * plain_idf[q]) * 1.0;
          break;
        case RankModel::kLmDirichlet:
          contrib = (std::log(1.0 + ((tf * total) / (mu * cfd[q])))) * 1.0;
          break;
        case RankModel::kLmJelinekMercer:
          contrib =
              (std::log(1.0 + (ratio * ((tf * total) / (len * cfd[q]))))) *
              1.0;
          break;
      }
      score += contrib;
      any = true;
    }
    if (!any) continue;  // no matching term: not a candidate, as in the join
    if (options.model == RankModel::kLmDirichlet) {
      score = score + qlen * std::log(mu / (len + mu));
    }
    out.push_back(DeltaCand{doc_id, score});
  }
  return out;
}

Result<RelationPtr> BuildMergedRelation(
    const RelationPtr& docs, const std::set<int64_t>& deleted,
    const std::map<int64_t, std::string>& added) {
  size_t id_col = 0, data_col = 0;
  SPINDLE_RETURN_IF_ERROR(FindDocColumns(*docs, &id_col, &data_col));
  std::map<int64_t, std::string> merged(added);
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    int64_t id = docs->column(id_col).Int64At(r);
    if (deleted.count(id) > 0 || merged.count(id) > 0) continue;
    merged.emplace(id, docs->column(data_col).StringAt(r));
  }
  std::vector<int64_t> ids;
  std::vector<std::string> texts;
  ids.reserve(merged.size());
  texts.reserve(merged.size());
  for (auto& [id, text] : merged) {
    ids.push_back(id);
    texts.push_back(std::move(text));
  }
  Schema schema(
      {{"docID", DataType::kInt64}, {"data", DataType::kString}});
  return Relation::Make(schema, {Column::MakeInt64(std::move(ids)),
                                 Column::MakeString(std::move(texts))});
}

Result<RelationPtr> ApplyWritesCold(const RelationPtr& docs,
                                    const std::vector<WriteOp>& ops) {
  size_t id_col = 0, data_col = 0;
  SPINDLE_RETURN_IF_ERROR(FindDocColumns(*docs, &id_col, &data_col));
  std::set<int64_t> base_ids;
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    base_ids.insert(docs->column(id_col).Int64At(r));
  }
  std::set<int64_t> deleted;
  std::map<int64_t, std::string> added;
  for (const WriteOp& op : ops) {
    const bool in_base =
        base_ids.count(op.doc_id) > 0 && deleted.count(op.doc_id) == 0;
    const bool in_added = added.count(op.doc_id) > 0;
    const bool live = in_base || in_added;
    const std::string id = std::to_string(op.doc_id);
    switch (op.kind) {
      case WriteOp::Kind::kAdd:
        if (live) return Status::AlreadyExists("docID " + id + " is live");
        added[op.doc_id] = op.text;
        break;
      case WriteOp::Kind::kUpdate:
        if (!live) return Status::NotFound("docID " + id + " is not live");
        if (in_base) deleted.insert(op.doc_id);
        added[op.doc_id] = op.text;
        break;
      case WriteOp::Kind::kDelete:
        if (!live) return Status::NotFound("docID " + id + " is not live");
        if (in_base) deleted.insert(op.doc_id);
        added.erase(op.doc_id);
        break;
    }
  }
  return BuildMergedRelation(docs, deleted, added);
}

}  // namespace ingest
}  // namespace spindle
