/// \file pra_ops.h
/// \brief The Probabilistic Relational Algebra operators (paper §2.3,
/// after Fuhr & Rölleke [8] and Roelleke et al. [12]).
///
/// Each operator states how probabilities combine when tuples are
/// processed: selections keep them, independent joins multiply them,
/// projections/unions merge duplicates under an explicit Assumption, and
/// the relational Bayes normalizes them within groups. "If applied
/// correctly, this algebra allows to keep the probabilistic computation
/// sound."

#pragma once

#include <vector>

#include "engine/expr.h"
#include "engine/ops.h"
#include "pra/prob_relation.h"

namespace spindle {
namespace pra {

/// \brief sigma: keeps tuples whose predicate holds; probabilities pass
/// through unchanged. The predicate may reference attribute columns and p.
Result<ProbRelation> Select(const ProbRelation& in, const ExprPtr& predicate,
                            const FunctionRegistry& registry);

/// \brief pi: projects attribute expressions, then merges duplicate
/// tuples under `assumption`. With kAll, duplicates are kept (bag).
///
/// An empty `items` list projects onto the empty schema: the result is a
/// single tuple whose probability aggregates the whole input (PRA's way of
/// counting / summing evidence), or an empty relation for empty input.
Result<ProbRelation> Project(const ProbRelation& in,
                             const std::vector<ExprPtr>& items,
                             const std::vector<std::string>& names,
                             Assumption assumption,
                             const FunctionRegistry& registry);

/// \brief Positional projection shortcut (no expression evaluation).
Result<ProbRelation> ProjectPositions(const ProbRelation& in,
                                      const std::vector<size_t>& positions,
                                      Assumption assumption);

/// \brief join^indep: equi-join; p = p_left * p_right. Keys are attribute
/// positions (p cannot be a key). Output: left attributes, right
/// attributes, p.
Result<ProbRelation> JoinIndependent(const ProbRelation& left,
                                     const ProbRelation& right,
                                     const std::vector<JoinKey>& keys);

/// \brief union: appends union-compatible inputs and merges duplicate
/// tuples under `assumption` (kAll appends without merging).
Result<ProbRelation> Unite(Assumption assumption,
                           const std::vector<ProbRelation>& inputs);

/// \brief Scales every probability by w (the building block of linear
/// mixes: WEIGHT + UNITE DISJOINT).
Result<ProbRelation> Weight(const ProbRelation& in, double weight);

/// \brief complement: p -> 1 - p on the same tuple set.
Result<ProbRelation> Complement(const ProbRelation& in);

/// \brief The relational Bayes [12]: normalizes p within each group of
/// equal values on `group_cols` (attribute positions); empty `group_cols`
/// normalizes over the whole relation. Groups whose probability mass is 0
/// keep p = 0.
Result<ProbRelation> Bayes(const ProbRelation& in,
                           const std::vector<size_t>& group_cols);

/// \brief Keeps the k most probable tuples, ordered by descending p
/// (ties broken by input order).
Result<ProbRelation> TopKByProb(const ProbRelation& in, size_t k);

}  // namespace pra
}  // namespace spindle
