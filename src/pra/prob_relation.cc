#include "pra/prob_relation.h"

#include <algorithm>

namespace spindle {

const char* AssumptionName(Assumption a) {
  switch (a) {
    case Assumption::kIndependent:
      return "INDEPENDENT";
    case Assumption::kDisjoint:
      return "DISJOINT";
    case Assumption::kMax:
      return "MAX";
    case Assumption::kAll:
      return "ALL";
  }
  return "?";
}

double CombineProb(Assumption assumption, double a, double b) {
  switch (assumption) {
    case Assumption::kIndependent:
      return 1.0 - (1.0 - a) * (1.0 - b);
    case Assumption::kDisjoint:
      return a + b;
    case Assumption::kMax:
      return std::max(a, b);
    case Assumption::kAll:
      return a;
  }
  return a;
}

Result<ProbRelation> ProbRelation::Wrap(RelationPtr rel) {
  if (rel->num_columns() == 0) {
    return Status::InvalidArgument("probabilistic relation needs columns");
  }
  const Field& last = rel->schema().field(rel->num_columns() - 1);
  if (last.type != DataType::kFloat64 || last.name != "p") {
    return Status::InvalidArgument(
        "last column must be float64 'p', got " + rel->schema().ToString());
  }
  return ProbRelation(std::move(rel));
}

Result<ProbRelation> ProbRelation::Attach(RelationPtr rel) {
  if (rel->num_columns() > 0) {
    const Field& last = rel->schema().field(rel->num_columns() - 1);
    if (last.type == DataType::kFloat64 && last.name == "p") {
      return ProbRelation(std::move(rel));
    }
  }
  Schema schema = rel->schema();
  schema.AddField({"p", DataType::kFloat64});
  std::vector<ColumnPtr> cols;
  cols.reserve(rel->num_columns() + 1);
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    cols.push_back(rel->column_ptr(c));
  }
  cols.push_back(std::make_shared<const Column>(
      Column::MakeFloat64(std::vector<double>(rel->num_rows(), 1.0))));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr out,
                           Relation::MakeShared(std::move(schema),
                                                std::move(cols)));
  return ProbRelation(std::move(out));
}

bool ProbRelation::ProbsAreNormalized() const {
  const auto& p = rel_->column(prob_col()).float64_data();
  return std::all_of(p.begin(), p.end(),
                     [](double v) { return v >= 0.0 && v <= 1.0; });
}

}  // namespace spindle
