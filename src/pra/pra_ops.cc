#include "pra/pra_ops.h"

#include <numeric>
#include <unordered_map>

#include "engine/row_hash.h"

namespace spindle {
namespace pra {

namespace {

/// Merges duplicate rows of `attrs` (all columns are key columns),
/// combining the parallel `probs` under `assumption`. Returns the merged
/// relation with a trailing p column.
Result<ProbRelation> DedupCombine(const RelationPtr& attrs,
                                  const std::vector<double>& probs,
                                  Assumption assumption) {
  std::vector<size_t> all_cols(attrs->num_columns());
  std::iota(all_cols.begin(), all_cols.end(), 0);
  RowHasher key(*attrs, all_cols);

  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
      buckets;
  buckets.reserve(attrs->num_rows());
  std::vector<uint32_t> repr_rows;
  std::vector<double> merged;
  for (size_t r = 0; r < attrs->num_rows(); ++r) {
    uint64_t h = key.Hash(r);
    auto& bucket = buckets[h];
    bool found = false;
    for (auto& [repr, g] : bucket) {
      if (key.Equals(r, key, repr)) {
        merged[g] = CombineProb(assumption, merged[g], probs[r]);
        found = true;
        break;
      }
    }
    if (!found) {
      uint32_t g = static_cast<uint32_t>(repr_rows.size());
      bucket.emplace_back(static_cast<uint32_t>(r), g);
      repr_rows.push_back(static_cast<uint32_t>(r));
      merged.push_back(probs[r]);
    }
  }

  Schema schema = attrs->schema();
  schema.AddField({"p", DataType::kFloat64});
  std::vector<Column> cols;
  cols.reserve(attrs->num_columns() + 1);
  for (size_t c = 0; c < attrs->num_columns(); ++c) {
    cols.push_back(attrs->column(c).Gather(repr_rows));
  }
  cols.push_back(Column::MakeFloat64(std::move(merged)));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr out,
                           Relation::Make(std::move(schema),
                                          std::move(cols)));
  return ProbRelation::Wrap(std::move(out));
}

/// Builds (attrs + p) without merging.
Result<ProbRelation> AttachP(Schema attr_schema, std::vector<Column> attrs,
                             std::vector<double> probs) {
  attr_schema.AddField({"p", DataType::kFloat64});
  attrs.push_back(Column::MakeFloat64(std::move(probs)));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr out,
                           Relation::Make(std::move(attr_schema),
                                          std::move(attrs)));
  return ProbRelation::Wrap(std::move(out));
}

}  // namespace

Result<ProbRelation> Select(const ProbRelation& in, const ExprPtr& predicate,
                            const FunctionRegistry& registry) {
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr out,
                           Filter(in.rel(), predicate, registry));
  return ProbRelation::Wrap(std::move(out));
}

Result<ProbRelation> Project(const ProbRelation& in,
                             const std::vector<ExprPtr>& items,
                             const std::vector<std::string>& names,
                             Assumption assumption,
                             const FunctionRegistry& registry) {
  if (items.size() != names.size()) {
    return Status::InvalidArgument("Project: items/names size mismatch");
  }
  const size_t nrows = in.num_rows();
  if (items.empty()) {
    // Projection onto the empty schema: one tuple aggregating the whole
    // input (empty relation for empty input). A relation cannot carry
    // rows without columns, so the result holds only the p column.
    Schema p_only({{"p", DataType::kFloat64}});
    if (nrows == 0) {
      return ProbRelation::Wrap(Relation::Empty(std::move(p_only)));
    }
    const auto& probs = in.rel()->column(in.prob_col()).float64_data();
    double combined = probs[0];
    for (size_t r = 1; r < nrows; ++r) {
      combined = CombineProb(assumption, combined, probs[r]);
    }
    std::vector<Column> cols;
    cols.push_back(Column::MakeFloat64({combined}));
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr out, Relation::Make(std::move(p_only), std::move(cols)));
    return ProbRelation::Wrap(std::move(out));
  }
  Schema attr_schema;
  std::vector<Column> attr_cols;
  attr_cols.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    SPINDLE_ASSIGN_OR_RETURN(Column c,
                             items[i]->Evaluate(*in.rel(), registry));
    SPINDLE_ASSIGN_OR_RETURN(c, MaterializeFull(std::move(c), nrows));
    attr_schema.AddField({names[i], c.type()});
    attr_cols.push_back(std::move(c));
  }
  auto prob_span = in.rel()->column(in.prob_col()).float64_data();
  std::vector<double> probs(prob_span.begin(), prob_span.end());

  if (assumption == Assumption::kAll) {
    return AttachP(std::move(attr_schema), std::move(attr_cols),
                   std::move(probs));
  }
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr attrs,
      Relation::Make(std::move(attr_schema), std::move(attr_cols)));
  return DedupCombine(attrs, probs, assumption);
}

Result<ProbRelation> ProjectPositions(const ProbRelation& in,
                                      const std::vector<size_t>& positions,
                                      Assumption assumption) {
  std::vector<ExprPtr> items;
  std::vector<std::string> names;
  for (size_t pos : positions) {
    if (pos >= in.arity()) {
      return Status::OutOfRange("projection position " +
                                std::to_string(pos + 1) +
                                " addresses the probability column or "
                                "lies beyond the relation arity");
    }
    items.push_back(Expr::Column(pos));
    names.push_back(in.rel()->schema().field(pos).name);
  }
  return Project(in, items, names, assumption, FunctionRegistry::Default());
}

Result<ProbRelation> JoinIndependent(const ProbRelation& left,
                                     const ProbRelation& right,
                                     const std::vector<JoinKey>& keys) {
  for (const auto& k : keys) {
    if (k.left >= left.arity() || k.right >= right.arity()) {
      return Status::OutOfRange(
          "join key addresses the probability column or lies beyond the "
          "relation arity");
    }
  }
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr joined,
      HashJoin(left.rel(), right.rel(), keys, JoinType::kInner));
  // Layout: left attrs, left p, right attrs, right p.
  const size_t lp = left.prob_col();
  const size_t rp = left.rel()->num_columns() + right.prob_col();
  std::vector<ExprPtr> items;
  std::vector<std::string> names;
  for (size_t c = 0; c < left.arity(); ++c) {
    items.push_back(Expr::Column(c));
    names.push_back(joined->schema().field(c).name);
  }
  for (size_t c = 0; c < right.arity(); ++c) {
    size_t idx = left.rel()->num_columns() + c;
    items.push_back(Expr::Column(idx));
    names.push_back(joined->schema().field(idx).name);
  }
  items.push_back(Expr::Mul(Expr::Column(lp), Expr::Column(rp)));
  names.push_back("p");
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr out,
      ProjectExprs(joined, items, names, FunctionRegistry::Default()));
  return ProbRelation::Wrap(std::move(out));
}

Result<ProbRelation> Unite(Assumption assumption,
                           const std::vector<ProbRelation>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("Unite requires at least one input");
  }
  std::vector<RelationPtr> rels;
  rels.reserve(inputs.size());
  for (const auto& in : inputs) rels.push_back(in.rel());
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr appended, UnionAll(rels));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation bag,
                           ProbRelation::Wrap(std::move(appended)));
  if (assumption == Assumption::kAll) return bag;
  std::vector<size_t> positions(bag.arity());
  std::iota(positions.begin(), positions.end(), 0);
  return ProjectPositions(bag, positions, assumption);
}

Result<ProbRelation> Weight(const ProbRelation& in, double weight) {
  auto prob_span = in.rel()->column(in.prob_col()).float64_data();
  std::vector<double> probs(prob_span.begin(), prob_span.end());
  for (double& p : probs) p *= weight;
  Schema schema;
  std::vector<Column> cols;
  for (size_t c = 0; c < in.arity(); ++c) {
    schema.AddField(in.rel()->schema().field(c));
    Column copy = in.rel()->column(c);
    cols.push_back(std::move(copy));
  }
  return AttachP(std::move(schema), std::move(cols), std::move(probs));
}

Result<ProbRelation> Complement(const ProbRelation& in) {
  auto prob_span = in.rel()->column(in.prob_col()).float64_data();
  std::vector<double> probs(prob_span.begin(), prob_span.end());
  for (double& p : probs) p = 1.0 - p;
  Schema schema;
  std::vector<Column> cols;
  for (size_t c = 0; c < in.arity(); ++c) {
    schema.AddField(in.rel()->schema().field(c));
    Column copy = in.rel()->column(c);
    cols.push_back(std::move(copy));
  }
  return AttachP(std::move(schema), std::move(cols), std::move(probs));
}

Result<ProbRelation> Bayes(const ProbRelation& in,
                           const std::vector<size_t>& group_cols) {
  for (size_t c : group_cols) {
    if (c >= in.arity()) {
      return Status::OutOfRange("Bayes group column out of range");
    }
  }
  const size_t n = in.num_rows();
  auto prob_span = in.rel()->column(in.prob_col()).float64_data();
  std::vector<double> probs(prob_span.begin(), prob_span.end());

  std::vector<double> group_sum;
  std::vector<uint32_t> group_of_row(n);
  if (group_cols.empty()) {
    double total = std::accumulate(probs.begin(), probs.end(), 0.0);
    group_sum.assign(1, total);
    std::fill(group_of_row.begin(), group_of_row.end(), 0);
  } else {
    RowHasher key(*in.rel(), group_cols);
    std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
        buckets;
    for (size_t r = 0; r < n; ++r) {
      uint64_t h = key.Hash(r);
      auto& bucket = buckets[h];
      uint32_t gid = UINT32_MAX;
      for (auto& [repr, g] : bucket) {
        if (key.Equals(r, key, repr)) {
          gid = g;
          break;
        }
      }
      if (gid == UINT32_MAX) {
        gid = static_cast<uint32_t>(group_sum.size());
        bucket.emplace_back(static_cast<uint32_t>(r), gid);
        group_sum.push_back(0.0);
      }
      group_of_row[r] = gid;
      group_sum[gid] += probs[r];
    }
  }
  for (size_t r = 0; r < n; ++r) {
    double denom = group_sum[group_of_row[r]];
    probs[r] = denom > 0.0 ? probs[r] / denom : 0.0;
  }
  Schema schema;
  std::vector<Column> cols;
  for (size_t c = 0; c < in.arity(); ++c) {
    schema.AddField(in.rel()->schema().field(c));
    Column copy = in.rel()->column(c);
    cols.push_back(std::move(copy));
  }
  return AttachP(std::move(schema), std::move(cols), std::move(probs));
}

Result<ProbRelation> TopKByProb(const ProbRelation& in, size_t k) {
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr out, TopK(in.rel(), SortKey{in.prob_col(), true}, k));
  return ProbRelation::Wrap(std::move(out));
}

}  // namespace pra
}  // namespace spindle
