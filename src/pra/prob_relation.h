/// \file prob_relation.h
/// \brief Probabilistic relations: tuple-level uncertainty (paper §2.3).
///
/// "A probability column p is appended to all tables, including triples, in
/// our RDBMS." A ProbRelation is a relation whose *last* column is the
/// float64 probability column, named "p". Positional attribute references
/// ($1, $2, ...) never address p — exactly as in the paper's SpinQL
/// examples, where a join of two 3-attribute triple patterns exposes
/// $1..$6 and p is maintained implicitly.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

/// \brief The probability-combination assumption of a PRA operator
/// (Fuhr & Rölleke). Governs what happens when duplicate tuples merge.
enum class Assumption {
  /// Events are independent: p = 1 - prod(1 - p_i).
  kIndependent,
  /// Events are disjoint: p = sum(p_i). This is also how counting works in
  /// PRA (summing p=1 duplicates yields frequencies) and how BM25's final
  /// score aggregation is expressed. Sums may exceed 1 when the input does
  /// not actually satisfy disjointness; Spindle does not clamp.
  kDisjoint,
  /// Keep the strongest evidence: p = max(p_i).
  kMax,
  /// Bag semantics: duplicates are kept, probabilities untouched.
  kAll,
};

const char* AssumptionName(Assumption a);

/// \brief Combines two probabilities under an assumption (kAll keeps `a`).
double CombineProb(Assumption assumption, double a, double b);

/// \brief A relation with an implicit trailing probability column.
class ProbRelation {
 public:
  ProbRelation() = default;

  /// \brief Wraps a relation that already has a trailing float64 column
  /// named "p".
  static Result<ProbRelation> Wrap(RelationPtr rel);

  /// \brief Attaches p = 1.0 to a deterministic relation (facts). If the
  /// relation already has a trailing "p" column it is wrapped as-is.
  static Result<ProbRelation> Attach(RelationPtr rel);

  /// \brief The underlying relation (attributes + trailing p).
  const RelationPtr& rel() const { return rel_; }

  /// \brief Number of attribute columns, excluding p.
  size_t arity() const { return rel_->num_columns() - 1; }
  size_t prob_col() const { return rel_->num_columns() - 1; }
  size_t num_rows() const { return rel_->num_rows(); }

  double prob_at(size_t row) const {
    return rel_->column(prob_col()).Float64At(row);
  }

  /// \brief True if every probability lies in [0, 1].
  bool ProbsAreNormalized() const;

 private:
  explicit ProbRelation(RelationPtr rel) : rel_(std::move(rel)) {}
  RelationPtr rel_;
};

}  // namespace spindle
