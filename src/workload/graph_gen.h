/// \file graph_gen.h
/// \brief Synthetic semantic graphs: the product catalog of the paper's
/// toy scenario (§2) and the auction database of the real-world scenario
/// (§3, scaled stand-in for 8M lots / 25k auctions).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "triples/triple_store.h"

namespace spindle {

/// \brief Toy-scenario product catalog.
struct ProductCatalogOptions {
  int64_t num_products = 1000;
  std::vector<std::string> categories = {"toy", "book", "food", "garden",
                                         "electronics"};
  int desc_len = 30;        ///< description length in tokens
  int64_t vocab_size = 5000;
  double zipf_exponent = 1.0;
  uint64_t seed = 7;
};

/// \brief Generates triples: for each product prod<i> —
/// (prod, type, "product"), (prod, category, c), (prod, description, text),
/// (prod, price, int), (prod, rating, float). Categories are assigned
/// round-robin so each holds ~num_products/|categories| products.
Result<TripleStore> GenerateProductCatalog(const ProductCatalogOptions& opts);

/// \brief §3 auction database.
struct AuctionGraphOptions {
  int64_t num_lots = 10000;
  int64_t num_auctions = 100;
  int lot_desc_len = 25;
  int lot_title_len = 5;
  int auction_desc_len = 60;
  int64_t vocab_size = 10000;
  double zipf_exponent = 1.0;
  /// Synonym pairs among the most frequent vocabulary words (symmetric,
  /// for the production strategy's query expansion).
  int64_t num_synonym_pairs = 500;
  /// Fraction of lots with a "tags" triple; tags carry this confidence
  /// (probabilities from confidence-based extraction, paper §2.3).
  double tags_fraction = 0.5;
  double tags_confidence = 0.8;
  /// Fraction of lots with sellerNotes.
  double seller_notes_fraction = 0.4;
  uint64_t seed = 11;
};

/// \brief Generates the auction graph: lots (type, description, title,
/// optional tags/sellerNotes, startPrice, hasAuction), auctions (type,
/// description), and synonym triples (word, synonym, word').
Result<TripleStore> GenerateAuctionGraph(const AuctionGraphOptions& opts);

/// \brief Keyword queries over the auction vocabulary (mid-frequency
/// band, like GenerateQueries).
std::vector<std::string> GenerateAuctionQueries(
    const AuctionGraphOptions& opts, int num_queries, int terms_per_query,
    uint64_t seed = 99);

}  // namespace spindle
