/// \file topical_gen.h
/// \brief Topical collections with ground-truth relevance.
///
/// Documents belong to topics; a configurable fraction of each document's
/// tokens is drawn from its topic's private vocabulary, the rest from a
/// shared Zipfian background. Queries are topic words, so the documents
/// of the query's topic are relevant by construction — giving the quality
/// tests an oracle without human judgments.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "ir/eval.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Parameters of a topical collection.
struct TopicalCollectionOptions {
  int num_topics = 10;
  int docs_per_topic = 100;
  /// Distinct words private to each topic.
  int64_t topic_vocab = 200;
  /// Shared background vocabulary (Zipf 1.0).
  int64_t shared_vocab = 5000;
  /// Fraction of document tokens drawn from the topic vocabulary.
  double topic_word_fraction = 0.4;
  int avg_doc_len = 50;
  int query_terms = 3;
  uint64_t seed = 17;
};

/// \brief A generated collection plus its relevance oracle.
struct TopicalCollection {
  RelationPtr docs;  ///< (docID: int64, data: string)
  /// Per topic: the relevant docIDs (exactly the topic's documents).
  std::vector<RelevantSet> relevant;
  /// Per topic: one query built from topic words.
  std::vector<std::string> queries;
};

Result<TopicalCollection> GenerateTopicalCollection(
    const TopicalCollectionOptions& opts);

}  // namespace spindle
