/// \file text_gen.h
/// \brief Synthetic text collections (substitute for the paper's 2.3 GB /
/// 1.1 M-document crawl).
///
/// Terms are drawn from a Zipf distribution over a synthetic vocabulary —
/// reproducing the statistical properties that drive relational IR cost
/// (posting-list skew, document-frequency distribution, document-length
/// spread). Everything is seeded and deterministic.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Parameters of a synthetic collection.
struct TextCollectionOptions {
  int64_t num_docs = 10000;
  int64_t vocab_size = 20000;
  /// Zipf exponent of the term distribution (natural text: ~1.0).
  double zipf_exponent = 1.0;
  /// Mean document length in tokens.
  int avg_doc_len = 120;
  /// Lengths are uniform in [avg*(1-jitter), avg*(1+jitter)].
  double length_jitter = 0.5;
  uint64_t seed = 42;
};

/// \brief Deterministic pseudo-word for a vocabulary rank (1-based);
/// low ranks are the frequent terms.
std::string WordForRank(uint64_t rank);

/// \brief Generates a (docID: int64, data: string) collection.
Result<RelationPtr> GenerateTextCollection(const TextCollectionOptions& opts);

/// \brief Query workload over the same vocabulary: terms are drawn from
/// the mid-frequency band (ranks [vocab/100, vocab/4]) so queries have
/// selective but non-empty posting lists, like real keyword queries.
std::vector<std::string> GenerateQueries(const TextCollectionOptions& opts,
                                         int num_queries,
                                         int terms_per_query,
                                         uint64_t seed = 1234);

/// \brief Zipf-sampled text of `len` tokens (shared by the graph
/// generators).
std::string RandomText(Rng& rng, const ZipfSampler& zipf, int len);

}  // namespace spindle
