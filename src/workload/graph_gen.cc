#include "workload/graph_gen.h"

#include <algorithm>

#include "workload/text_gen.h"

namespace spindle {

Result<TripleStore> GenerateProductCatalog(
    const ProductCatalogOptions& opts) {
  if (opts.categories.empty() || opts.num_products < 0) {
    return Status::InvalidArgument("invalid product catalog options");
  }
  // One splittable stream per product: entity i depends only on
  // (opts.seed, i), independent of generation order or thread count.
  Rng root(opts.seed);
  ZipfSampler zipf(static_cast<uint64_t>(opts.vocab_size),
                   opts.zipf_exponent);
  TripleStore store;
  for (int64_t i = 0; i < opts.num_products; ++i) {
    Rng rng = root.Split(static_cast<uint64_t>(i));
    std::string id = "prod" + std::to_string(i + 1);
    store.Add(id, "type", "product");
    store.Add(id, "category",
              opts.categories[static_cast<size_t>(i) %
                              opts.categories.size()]);
    store.Add(id, "description", RandomText(rng, zipf, opts.desc_len));
    store.AddInt(id, "price",
                 static_cast<int64_t>(1 + rng.NextBounded(1000)));
    store.AddFloat(id, "rating", 1.0 + 4.0 * rng.NextDouble());
  }
  return store;
}

Result<TripleStore> GenerateAuctionGraph(const AuctionGraphOptions& opts) {
  if (opts.num_auctions <= 0 || opts.num_lots < 0) {
    return Status::InvalidArgument("invalid auction graph options");
  }
  // Disjoint per-entity streams (auctions / lots / synonym pairs live in
  // separate stream bands) so each entity's attributes depend only on
  // (opts.seed, entity), never on how many entities came before it.
  Rng root(opts.seed);
  ZipfSampler zipf(static_cast<uint64_t>(opts.vocab_size),
                   opts.zipf_exponent);
  TripleStore store;

  for (int64_t a = 0; a < opts.num_auctions; ++a) {
    Rng rng = root.Split(static_cast<uint64_t>(a));
    std::string id = "auction" + std::to_string(a + 1);
    store.Add(id, "type", "auction");
    store.Add(id, "description",
              RandomText(rng, zipf, opts.auction_desc_len));
  }

  for (int64_t l = 0; l < opts.num_lots; ++l) {
    Rng rng = root.Split((1ULL << 40) + static_cast<uint64_t>(l));
    std::string id = "lot" + std::to_string(l + 1);
    store.Add(id, "type", "lot");
    store.Add(id, "description", RandomText(rng, zipf, opts.lot_desc_len));
    store.Add(id, "title", RandomText(rng, zipf, opts.lot_title_len));
    store.Add(id, "hasAuction",
              "auction" + std::to_string(
                              1 + rng.NextBounded(static_cast<uint64_t>(
                                      opts.num_auctions))));
    store.AddInt(id, "startPrice",
                 static_cast<int64_t>(5 + rng.NextBounded(5000)));
    if (rng.NextDouble() < opts.tags_fraction) {
      store.Add(id, "tags", RandomText(rng, zipf, 3),
                opts.tags_confidence);
    }
    if (rng.NextDouble() < opts.seller_notes_fraction) {
      store.Add(id, "sellerNotes", RandomText(rng, zipf, 10));
    }
  }

  // Symmetric synonym pairs among frequent words (ranks 1..4k), so query
  // expansion actually fires for mid/high-frequency query terms.
  const uint64_t syn_band = std::max<uint64_t>(
      2, std::min<uint64_t>(static_cast<uint64_t>(opts.vocab_size),
                            static_cast<uint64_t>(
                                opts.num_synonym_pairs) * 8));
  for (int64_t sidx = 0; sidx < opts.num_synonym_pairs; ++sidx) {
    Rng rng = root.Split((2ULL << 40) + static_cast<uint64_t>(sidx));
    uint64_t a = 1 + rng.NextBounded(syn_band);
    uint64_t b = 1 + rng.NextBounded(syn_band);
    if (a == b) continue;
    store.Add(WordForRank(a), "synonym", WordForRank(b));
    store.Add(WordForRank(b), "synonym", WordForRank(a));
  }
  return store;
}

std::vector<std::string> GenerateAuctionQueries(
    const AuctionGraphOptions& opts, int num_queries, int terms_per_query,
    uint64_t seed) {
  TextCollectionOptions text_opts;
  text_opts.vocab_size = opts.vocab_size;
  return GenerateQueries(text_opts, num_queries, terms_per_query, seed);
}

}  // namespace spindle
