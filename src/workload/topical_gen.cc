#include "workload/topical_gen.h"

#include "common/rng.h"
#include "workload/text_gen.h"

namespace spindle {

Result<TopicalCollection> GenerateTopicalCollection(
    const TopicalCollectionOptions& opts) {
  if (opts.num_topics <= 0 || opts.docs_per_topic <= 0 ||
      opts.topic_vocab <= 0 || opts.shared_vocab <= 0 ||
      opts.topic_word_fraction < 0 || opts.topic_word_fraction > 1) {
    return Status::InvalidArgument("invalid topical collection options");
  }
  Rng rng(opts.seed);
  ZipfSampler shared(static_cast<uint64_t>(opts.shared_vocab), 1.0);

  // Topic t owns vocabulary ranks
  // shared_vocab + t*topic_vocab + [1, topic_vocab].
  auto topic_word = [&](int topic, uint64_t k) {
    return WordForRank(static_cast<uint64_t>(opts.shared_vocab) +
                       static_cast<uint64_t>(topic) *
                           static_cast<uint64_t>(opts.topic_vocab) +
                       k);
  };

  TopicalCollection out;
  out.relevant.resize(static_cast<size_t>(opts.num_topics));
  RelationBuilder builder(
      {{"docID", DataType::kInt64}, {"data", DataType::kString}});
  int64_t doc_id = 0;
  for (int t = 0; t < opts.num_topics; ++t) {
    for (int d = 0; d < opts.docs_per_topic; ++d) {
      ++doc_id;
      out.relevant[static_cast<size_t>(t)].insert(doc_id);
      std::string text;
      for (int i = 0; i < opts.avg_doc_len; ++i) {
        if (i > 0) text.push_back(' ');
        if (rng.NextDouble() < opts.topic_word_fraction) {
          text += topic_word(
              t, 1 + rng.NextBounded(
                         static_cast<uint64_t>(opts.topic_vocab)));
        } else {
          text += WordForRank(shared.Sample(rng));
        }
      }
      SPINDLE_RETURN_IF_ERROR(builder.AddRow({doc_id, text}));
    }
  }
  SPINDLE_ASSIGN_OR_RETURN(out.docs, builder.Build());

  for (int t = 0; t < opts.num_topics; ++t) {
    std::string query;
    for (int i = 0; i < opts.query_terms; ++i) {
      if (i > 0) query.push_back(' ');
      query += topic_word(
          t, 1 + rng.NextBounded(static_cast<uint64_t>(opts.topic_vocab)));
    }
    out.queries.push_back(std::move(query));
  }
  return out;
}

}  // namespace spindle
