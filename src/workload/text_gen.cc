#include "workload/text_gen.h"

#include <algorithm>

#include "exec/scheduler.h"

namespace spindle {

std::string WordForRank(uint64_t rank) {
  // Scramble the rank so lexicographic and frequency order are unrelated,
  // then render in base-26. Deterministic and collision-free (the
  // scramble is a fixed-point-free bijection on 64-bit values).
  uint64_t state = rank * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  uint64_t x = state ^ (state >> 29);
  std::string word;
  word.reserve(8);
  for (int i = 0; i < 5; ++i) {
    word.push_back('a' + static_cast<char>(x % 26));
    x /= 26;
  }
  // Append the rank in base-26 to guarantee uniqueness.
  uint64_t r = rank;
  do {
    word.push_back('a' + static_cast<char>(r % 26));
    r /= 26;
  } while (r > 0);
  return word;
}

std::string RandomText(Rng& rng, const ZipfSampler& zipf, int len) {
  std::string text;
  text.reserve(static_cast<size_t>(len) * 8);
  for (int i = 0; i < len; ++i) {
    if (i > 0) text.push_back(' ');
    text += WordForRank(zipf.Sample(rng));
  }
  return text;
}

Result<RelationPtr> GenerateTextCollection(
    const TextCollectionOptions& opts) {
  if (opts.num_docs < 0 || opts.vocab_size <= 0) {
    return Status::InvalidArgument("invalid collection options");
  }
  // One splittable stream per document: doc d depends only on
  // (opts.seed, d), so the collection is byte-identical at every thread
  // count and docs can be generated in parallel.
  Rng root(opts.seed);
  ZipfSampler zipf(static_cast<uint64_t>(opts.vocab_size),
                   opts.zipf_exponent);

  const int lo = std::max(
      1, static_cast<int>(opts.avg_doc_len * (1.0 - opts.length_jitter)));
  const int hi = std::max(
      lo, static_cast<int>(opts.avg_doc_len * (1.0 + opts.length_jitter)));

  std::vector<int64_t> ids(static_cast<size_t>(opts.num_docs));
  std::vector<std::string> texts(static_cast<size_t>(opts.num_docs));
  ParallelFor(ExecContext::Current(), static_cast<size_t>(opts.num_docs),
              [&](size_t begin, size_t end, size_t /*morsel*/) {
                for (size_t d = begin; d < end; ++d) {
                  ids[d] = static_cast<int64_t>(d) + 1;
                  Rng rng = root.Split(static_cast<uint64_t>(d));
                  int len = lo + static_cast<int>(rng.NextBounded(
                                     static_cast<uint64_t>(hi - lo + 1)));
                  texts[d] = RandomText(rng, zipf, len);
                }
              });
  Schema schema({{"docID", DataType::kInt64}, {"data", DataType::kString}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(ids)));
  cols.push_back(Column::MakeString(std::move(texts)));
  return Relation::Make(std::move(schema), std::move(cols));
}

std::vector<std::string> GenerateQueries(const TextCollectionOptions& opts,
                                         int num_queries,
                                         int terms_per_query,
                                         uint64_t seed) {
  Rng rng(seed);
  const uint64_t lo = std::max<int64_t>(1, opts.vocab_size / 100);
  const uint64_t hi =
      std::max<int64_t>(static_cast<int64_t>(lo) + 1, opts.vocab_size / 4);
  std::vector<std::string> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    std::string query;
    for (int t = 0; t < terms_per_query; ++t) {
      if (t > 0) query.push_back(' ');
      uint64_t rank = lo + rng.NextBounded(hi - lo);
      query += WordForRank(rank);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace spindle
