/// \file io.h
/// \brief Relation persistence: a simple columnar binary format plus
/// TSV import/export. An industrial deployment feeds the engine from
/// files; the paper's system ingests raw data "with almost no
/// pre-processing", which these loaders preserve (strings stay verbatim).
///
/// Binary format (little-endian):
///   magic "SPNDL1\n"            7 bytes
///   u32 num_columns, u64 num_rows
///   per column: u8 type, u32 name_len, name bytes
///   per column payload:
///     int64/float64: num_rows * 8 bytes
///     string: per row u32 len + bytes

#pragma once

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Writes a relation to `path` in the Spindle binary format.
Status WriteRelation(const Relation& rel, const std::string& path);

/// \brief Reads a relation written by WriteRelation.
Result<RelationPtr> ReadRelation(const std::string& path);

/// \brief Writes tab-separated values with a `name:type` header line.
/// Tabs/newlines/backslashes in strings are escaped (\t, \n, \\).
Status WriteTsv(const Relation& rel, const std::string& path);

/// \brief Reads a TSV file written by WriteTsv (header required).
Result<RelationPtr> ReadTsv(const std::string& path);

}  // namespace spindle
