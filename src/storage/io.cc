#include "storage/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/str.h"

namespace spindle {

namespace {

constexpr char kMagic[] = "SPNDL1\n";
constexpr size_t kMagicLen = 7;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + ": " + path);
}

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool WritePod(std::FILE* f, T v) {
  return WriteBytes(f, &v, sizeof(v));
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(*v));
}

std::string EscapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char next = s[i + 1];
      if (next == 't') {
        out.push_back('\t');
        ++i;
        continue;
      }
      if (next == 'n') {
        out.push_back('\n');
        ++i;
        continue;
      }
      if (next == '\\') {
        out.push_back('\\');
        ++i;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

Result<DataType> ParseType(const std::string& name) {
  if (name == "int64") return DataType::kInt64;
  if (name == "float64") return DataType::kFloat64;
  if (name == "string") return DataType::kString;
  return Status::ParseError("unknown column type '" + name + "'");
}

}  // namespace

Status WriteRelation(const Relation& rel, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoError("cannot open for writing", path);
  if (!WriteBytes(f.get(), kMagic, kMagicLen)) {
    return IoError("write failed", path);
  }
  uint32_t ncols = static_cast<uint32_t>(rel.num_columns());
  uint64_t nrows = rel.num_rows();
  if (!WritePod(f.get(), ncols) || !WritePod(f.get(), nrows)) {
    return IoError("write failed", path);
  }
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    const Field& field = rel.schema().field(c);
    uint8_t type = static_cast<uint8_t>(field.type);
    uint32_t name_len = static_cast<uint32_t>(field.name.size());
    if (!WritePod(f.get(), type) || !WritePod(f.get(), name_len) ||
        !WriteBytes(f.get(), field.name.data(), field.name.size())) {
      return IoError("write failed", path);
    }
  }
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    const Column& col = rel.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        if (!WriteBytes(f.get(), col.int64_data().data(),
                        nrows * sizeof(int64_t))) {
          return IoError("write failed", path);
        }
        break;
      case DataType::kFloat64:
        if (!WriteBytes(f.get(), col.float64_data().data(),
                        nrows * sizeof(double))) {
          return IoError("write failed", path);
        }
        break;
      case DataType::kString:
        // Via StringAt so dict-encoded columns serialize transparently
        // (the on-disk format stays representation-free).
        for (uint64_t r = 0; r < nrows; ++r) {
          const std::string& s = col.StringAt(r);
          uint32_t len = static_cast<uint32_t>(s.size());
          if (!WritePod(f.get(), len) ||
              !WriteBytes(f.get(), s.data(), s.size())) {
            return IoError("write failed", path);
          }
        }
        break;
    }
  }
  return Status::OK();
}

Result<RelationPtr> ReadRelation(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoError("cannot open for reading", path);
  char magic[kMagicLen];
  if (!ReadBytes(f.get(), magic, kMagicLen) ||
      std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::ParseError("not a Spindle relation file: " + path);
  }
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!ReadPod(f.get(), &ncols) || !ReadPod(f.get(), &nrows)) {
    return IoError("truncated header", path);
  }
  Schema schema;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint8_t type = 0;
    uint32_t name_len = 0;
    if (!ReadPod(f.get(), &type) || !ReadPod(f.get(), &name_len) ||
        type > 2) {
      return IoError("corrupt column header", path);
    }
    std::string name(name_len, '\0');
    if (!ReadBytes(f.get(), name.data(), name_len)) {
      return IoError("corrupt column name", path);
    }
    schema.AddField({std::move(name), static_cast<DataType>(type)});
  }
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    DataType type = schema.field(c).type;
    switch (type) {
      case DataType::kInt64: {
        std::vector<int64_t> data(nrows);
        if (!ReadBytes(f.get(), data.data(), nrows * sizeof(int64_t))) {
          return IoError("truncated int64 column", path);
        }
        cols.push_back(Column::MakeInt64(std::move(data)));
        break;
      }
      case DataType::kFloat64: {
        std::vector<double> data(nrows);
        if (!ReadBytes(f.get(), data.data(), nrows * sizeof(double))) {
          return IoError("truncated float64 column", path);
        }
        cols.push_back(Column::MakeFloat64(std::move(data)));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> data;
        data.reserve(nrows);
        for (uint64_t r = 0; r < nrows; ++r) {
          uint32_t len = 0;
          if (!ReadPod(f.get(), &len)) {
            return IoError("truncated string column", path);
          }
          std::string s(len, '\0');
          if (!ReadBytes(f.get(), s.data(), len)) {
            return IoError("truncated string value", path);
          }
          data.push_back(std::move(s));
        }
        cols.push_back(Column::MakeString(std::move(data)));
        break;
      }
    }
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

Status WriteTsv(const Relation& rel, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return IoError("cannot open for writing", path);
  std::string header;
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    if (c > 0) header += '\t';
    header += rel.schema().field(c).name;
    header += ':';
    header += DataTypeName(rel.schema().field(c).type);
  }
  header += '\n';
  if (!WriteBytes(f.get(), header.data(), header.size())) {
    return IoError("write failed", path);
  }
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    std::string line;
    for (size_t c = 0; c < rel.num_columns(); ++c) {
      if (c > 0) line += '\t';
      const Column& col = rel.column(c);
      line += col.type() == DataType::kString
                  ? EscapeTsv(col.StringAt(r))
                  : col.ToStringAt(r);
    }
    line += '\n';
    if (!WriteBytes(f.get(), line.data(), line.size())) {
      return IoError("write failed", path);
    }
  }
  return Status::OK();
}

Result<RelationPtr> ReadTsv(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return IoError("cannot open for reading", path);
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    content.append(buf, got);
  }
  std::vector<std::string> lines = Split(content, '\n');
  if (lines.empty() || lines[0].empty()) {
    return Status::ParseError("TSV file has no header: " + path);
  }
  Schema schema;
  for (const std::string& field_spec : Split(lines[0], '\t')) {
    size_t colon = field_spec.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("TSV header field '" + field_spec +
                                "' is not name:type");
    }
    SPINDLE_ASSIGN_OR_RETURN(DataType type,
                             ParseType(field_spec.substr(colon + 1)));
    schema.AddField({field_spec.substr(0, colon), type});
  }
  RelationBuilder builder(schema);
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    std::vector<std::string> cells = Split(lines[i], '\t');
    if (cells.size() != schema.num_fields()) {
      return Status::ParseError("TSV row " + std::to_string(i) + " has " +
                                std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(schema.num_fields()));
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      switch (schema.field(c).type) {
        case DataType::kInt64:
          row.emplace_back(
              static_cast<int64_t>(std::strtoll(cells[c].c_str(),
                                                nullptr, 10)));
          break;
        case DataType::kFloat64:
          row.emplace_back(std::strtod(cells[c].c_str(), nullptr));
          break;
        case DataType::kString:
          row.emplace_back(UnescapeTsv(cells[c]));
          break;
      }
    }
    SPINDLE_RETURN_IF_ERROR(builder.AddRow(row));
  }
  return builder.Build();
}

}  // namespace spindle
