#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"
#include "storage/block_codec.h"

namespace spindle {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// Streaming form of SnapshotChecksum: folds 8-byte words, buffering the
/// tail across Update calls so chunked writes and one-shot reads agree.
class Checksummer {
 public:
  void Update(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    if (carry_len_ > 0) {
      while (size > 0 && carry_len_ < 8) {
        carry_[carry_len_++] = *p++;
        --size;
      }
      if (carry_len_ == 8) {
        FoldWord(carry_);
        carry_len_ = 0;
      }
    }
    size_t words = size / 8;
    for (size_t i = 0; i < words; ++i) FoldWord(p + i * 8);
    p += words * 8;
    size -= words * 8;
    while (size > 0) {
      carry_[carry_len_++] = *p++;
      --size;
    }
  }

  uint64_t Finish() const {
    uint64_t h = hash_;
    for (size_t i = 0; i < carry_len_; ++i) {
      h = (h ^ carry_[i]) * kFnvPrime;
    }
    return h;
  }

 private:
  void FoldWord(const uint8_t* p) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    hash_ = (hash_ ^ w) * kFnvPrime;
  }

  uint64_t hash_ = kFnvOffset;
  uint8_t carry_[8];
  size_t carry_len_ = 0;
};

uint64_t AlignUp(uint64_t v) {
  return (v + kSnapshotSectionAlign - 1) & ~uint64_t{kSnapshotSectionAlign - 1};
}

Status WriteChecked(FILE* f, const void* data, size_t size,
                    const std::string& path) {
  if (size == 0) return Status::OK();
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("snapshot '" + path + "': " + what);
}

template <typename T>
std::string PodBytes(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::string(reinterpret_cast<const char*>(v.data()),
                     v.size() * sizeof(T));
}

}  // namespace

uint64_t SnapshotChecksum(const std::byte* data, size_t size) {
  Checksummer sum;
  sum.Update(data, size);
  return sum.Finish();
}

uint32_t SnapshotWriter::AddSection(std::string_view name, const void* data,
                                    size_t size) {
  Pending p;
  p.name = std::string(name.substr(0, kSnapshotSectionNameLen - 1));
  p.data = data;
  p.size = size;
  sections_.push_back(std::move(p));
  return static_cast<uint32_t>(sections_.size() - 1);
}

uint32_t SnapshotWriter::AddOwnedSection(std::string_view name,
                                         std::string bytes) {
  Pending p;
  p.name = std::string(name.substr(0, kSnapshotSectionNameLen - 1));
  p.data = nullptr;
  p.size = bytes.size();
  p.owned = std::move(bytes);
  sections_.push_back(std::move(p));
  return static_cast<uint32_t>(sections_.size() - 1);
}

Status SnapshotWriter::Finish(const std::string& path) {
  obs::Span span("snapshot", "save");

  // Lay out the file: header, TOC, then 64-byte-aligned payloads.
  const uint64_t toc_offset = sizeof(SnapshotHeader);
  std::vector<SnapshotSectionEntry> toc(sections_.size());
  uint64_t pos =
      AlignUp(toc_offset + sections_.size() * sizeof(SnapshotSectionEntry));
  const uint64_t payload_start = pos;
  for (size_t i = 0; i < sections_.size(); ++i) {
    SnapshotSectionEntry& e = toc[i];
    std::memset(&e, 0, sizeof(e));
    std::memcpy(e.name, sections_[i].name.data(), sections_[i].name.size());
    e.offset = pos;
    e.size = sections_[i].size;
    pos = AlignUp(pos + e.size);
  }
  const uint64_t file_size = pos;

  SnapshotHeader hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  std::memcpy(hdr.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  hdr.format_version = kSnapshotFormatVersion;
  hdr.num_sections = static_cast<uint32_t>(sections_.size());
  hdr.file_size = file_size;
  hdr.toc_offset = toc_offset;
  hdr.toc_checksum = SnapshotChecksum(
      reinterpret_cast<const std::byte*>(toc.data()),
      toc.size() * sizeof(SnapshotSectionEntry));
  hdr.payload_checksum = 0;  // patched after the payload is written

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create snapshot '" + path +
                            "': " + std::strerror(errno));
  }
  auto fail = [&](Status st) {
    std::fclose(f);
    std::remove(path.c_str());
    return st;
  };

  Status st = WriteChecked(f, &hdr, sizeof(hdr), path);
  if (st.ok()) {
    st = WriteChecked(f, toc.data(),
                      toc.size() * sizeof(SnapshotSectionEntry), path);
  }
  if (!st.ok()) return fail(st);

  // Payloads with zero padding; the checksum covers padding too, so the
  // whole region [payload_start, file_size) is verified on load.
  static const char kZeros[kSnapshotSectionAlign] = {0};
  uint64_t written = toc_offset + toc.size() * sizeof(SnapshotSectionEntry);
  Checksummer payload_sum;
  auto emit = [&](const void* data, size_t size) {
    Status w = WriteChecked(f, data, size, path);
    if (w.ok()) {
      payload_sum.Update(data, size);
      written += size;
    }
    return w;
  };
  if (payload_start > written) {
    // Padding between TOC and first payload sits before payload_start and
    // is outside both checksums.
    st = WriteChecked(f, kZeros, payload_start - written, path);
    if (!st.ok()) return fail(st);
    written = payload_start;
  }
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Pending& p = sections_[i];
    const void* data = p.data != nullptr ? p.data : p.owned.data();
    st = emit(data, p.size);
    if (st.ok() && written < AlignUp(written)) {
      st = emit(kZeros, AlignUp(written) - written);
    }
    if (!st.ok()) return fail(st);
  }
  hdr.payload_checksum = payload_sum.Finish();

  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(&hdr, 1, sizeof(hdr), f) != sizeof(hdr)) {
    return fail(Status::Internal("cannot rewrite snapshot header of '" +
                                 path + "'"));
  }
  if (std::fflush(f) != 0) {
    return fail(Status::Internal("cannot flush snapshot '" + path + "'"));
  }
  std::fclose(f);

  if (span.active()) {
    span.Add("bytes", static_cast<int64_t>(file_size));
    span.Add("sections", static_cast<int64_t>(sections_.size()));
    span.Note("path", path);
  }
  return Status::OK();
}

Result<std::shared_ptr<const SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  obs::Span span("snapshot", "map");
  SPINDLE_ASSIGN_OR_RETURN(std::shared_ptr<const MmapFile> file,
                           MmapFile::OpenReadOnly(path));
  const std::byte* base = file->data();
  const size_t size = file->size();
  if (size < sizeof(SnapshotHeader)) {
    return Corrupt(path, "file smaller than the header");
  }
  SnapshotHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (hdr.format_version != kSnapshotFormatVersion) {
    return Corrupt(path, "snapshot format version mismatch: found version " +
                             std::to_string(hdr.format_version) +
                             ", expected version " +
                             std::to_string(kSnapshotFormatVersion) +
                             " — rebuild the snapshot with this binary");
  }
  if (hdr.file_size != size) {
    return Corrupt(path, "header says " + std::to_string(hdr.file_size) +
                             " bytes but the file has " +
                             std::to_string(size) + " (truncated?)");
  }
  if (hdr.toc_offset != sizeof(SnapshotHeader)) {
    return Corrupt(path, "unexpected TOC offset");
  }
  const uint64_t toc_bytes =
      uint64_t{hdr.num_sections} * sizeof(SnapshotSectionEntry);
  if (toc_bytes > size - hdr.toc_offset) {
    return Corrupt(path, "TOC extends past end of file");
  }
  if (SnapshotChecksum(base + hdr.toc_offset, toc_bytes) !=
      hdr.toc_checksum) {
    return Corrupt(path, "TOC checksum mismatch");
  }
  const uint64_t payload_start = AlignUp(hdr.toc_offset + toc_bytes);
  if (payload_start > size) {
    return Corrupt(path, "payload region extends past end of file");
  }
  if (SnapshotChecksum(base + payload_start, size - payload_start) !=
      hdr.payload_checksum) {
    return Corrupt(path, "payload checksum mismatch");
  }

  auto reader = std::shared_ptr<SnapshotReader>(
      new SnapshotReader(std::move(file)));
  reader->sections_.reserve(hdr.num_sections);
  for (uint32_t i = 0; i < hdr.num_sections; ++i) {
    SnapshotSectionEntry e;
    std::memcpy(&e, base + hdr.toc_offset + i * sizeof(e), sizeof(e));
    Section s;
    s.name.assign(e.name, strnlen(e.name, kSnapshotSectionNameLen));
    s.offset = e.offset;
    s.size = e.size;
    if (s.offset % kSnapshotSectionAlign != 0 || s.offset < payload_start ||
        s.offset > size || s.size > size - s.offset) {
      return Corrupt(path, "section " + std::to_string(i) + " ('" + s.name +
                               "') out of bounds");
    }
    // First occurrence wins; duplicate names (possible after truncation)
    // are only reachable by id.
    reader->by_name_.emplace(s.name, i);
    reader->sections_.push_back(std::move(s));
  }
  if (span.active()) {
    span.Add("bytes", static_cast<int64_t>(size));
    span.Add("sections", static_cast<int64_t>(reader->sections_.size()));
    span.Note("path", path);
  }
  return std::shared_ptr<const SnapshotReader>(std::move(reader));
}

Result<uint32_t> SnapshotReader::FindSection(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("snapshot '" + path() + "' has no section '" +
                            name + "'");
  }
  return it->second;
}

bool SnapshotReader::HasSection(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

Result<std::span<const std::byte>> SnapshotReader::SectionBytes(
    uint32_t id) const {
  if (id >= sections_.size()) {
    return Status::OutOfRange("snapshot section id " + std::to_string(id) +
                              " out of range (" +
                              std::to_string(sections_.size()) +
                              " sections)");
  }
  const Section& s = sections_[id];
  return std::span<const std::byte>(file_->data() + s.offset, s.size);
}

uint32_t SnapshotDictTable::Add(const StringDictPtr& dict) {
  auto it = by_ptr_.find(dict.get());
  if (it != by_ptr_.end()) return it->second;

  const std::vector<std::string>& strings = dict->strings();
  std::string blob;
  size_t total = 0;
  for (const auto& s : strings) total += s.size();
  blob.reserve(total);
  std::vector<uint64_t> offsets;
  offsets.reserve(strings.size() + 1);
  offsets.push_back(0);
  std::vector<uint64_t> hashes;
  hashes.reserve(strings.size());
  for (size_t i = 0; i < strings.size(); ++i) {
    blob += strings[i];
    offsets.push_back(blob.size());
    hashes.push_back(dict->HashAtPos(i));
  }

  const uint32_t slot = static_cast<uint32_t>(entries_.size());
  const std::string label = "dict" + std::to_string(slot);
  Entry e;
  e.first_id = dict->first_id();
  e.count = strings.size();
  e.blob_section = writer_->AddOwnedSection(label + ".blob", std::move(blob));
  e.offsets_section =
      writer_->AddOwnedSection(label + ".off", PodBytes(offsets));
  e.hashes_section =
      writer_->AddOwnedSection(label + ".hash", PodBytes(hashes));
  entries_.push_back(e);
  by_ptr_.emplace(dict.get(), slot);
  return slot;
}

std::string SnapshotDictTable::EncodeMeta() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.I64(e.first_id);
    w.U64(e.count);
    w.U32(e.blob_section);
    w.U32(e.offsets_section);
    w.U32(e.hashes_section);
  }
  return w.Take();
}

Result<std::vector<StringDictPtr>> DecodeSnapshotDicts(
    const std::shared_ptr<const SnapshotReader>& snap) {
  std::vector<StringDictPtr> dicts;
  if (!snap->HasSection("dicts")) return dicts;
  SPINDLE_ASSIGN_OR_RETURN(uint32_t sec, snap->FindSection("dicts"));
  SPINDLE_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                           snap->SectionBytes(sec));
  ByteReader r(bytes);
  const uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    const int64_t first_id = r.I64();
    const uint64_t n = r.U64();
    const uint32_t blob_sec = r.U32();
    const uint32_t off_sec = r.U32();
    const uint32_t hash_sec = r.U32();
    if (!r.ok()) break;
    SPINDLE_ASSIGN_OR_RETURN(std::span<const char> blob,
                             snap->PodSection<char>(blob_sec));
    SPINDLE_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                             snap->PodSection<uint64_t>(off_sec));
    SPINDLE_ASSIGN_OR_RETURN(std::span<const uint64_t> hashes,
                             snap->PodSection<uint64_t>(hash_sec));
    if (offsets.size() != n + 1 || hashes.size() != n) {
      return Corrupt(snap->path(),
                     "dict " + std::to_string(i) + " has inconsistent "
                     "offsets/hashes lengths");
    }
    std::vector<std::string> strings;
    strings.reserve(n);
    for (uint64_t j = 0; j < n; ++j) {
      if (offsets[j] > offsets[j + 1] || offsets[j + 1] > blob.size()) {
        return Corrupt(snap->path(), "dict " + std::to_string(i) +
                                         " has non-monotone offsets");
      }
      strings.emplace_back(blob.data() + offsets[j],
                           offsets[j + 1] - offsets[j]);
    }
    SPINDLE_ASSIGN_OR_RETURN(
        std::shared_ptr<StringDict> dict,
        StringDict::FromIdOrderedStrings(
            first_id, std::move(strings),
            std::vector<uint64_t>(hashes.begin(), hashes.end())));
    dicts.push_back(std::move(dict));
  }
  SPINDLE_RETURN_IF_ERROR(r.status());
  return dicts;
}

namespace {

// Column representation tags in relation metadata.
constexpr uint8_t kReprInt64 = 0;
constexpr uint8_t kReprFloat64 = 1;
constexpr uint8_t kReprPlainString = 2;
constexpr uint8_t kReprDictString = 3;
// Compressed representations (format v2): the section holds the
// blockcodec::EncodeIntBlob byte stream verbatim, decoded lazily from the
// mapping after load.
constexpr uint8_t kReprInt64Compressed = 4;
constexpr uint8_t kReprDictStringCompressed = 5;

}  // namespace

void EncodeRelation(SnapshotWriter* writer, SnapshotDictTable* dicts,
                    const Relation& rel, const std::string& prefix,
                    ByteWriter* meta) {
  meta->U64(rel.num_rows());
  meta->U32(static_cast<uint32_t>(rel.num_columns()));
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    const Field& field = rel.schema().field(c);
    const Column& col = rel.column(c);
    meta->Str(field.name);
    meta->U8(static_cast<uint8_t>(field.type));
    const std::string label = prefix + ".c" + std::to_string(c);
    switch (col.type()) {
      case DataType::kInt64:
        if (col.compressed()) {
          // Write the encoded blob verbatim — no decode+re-encode round
          // trip, and the loaded column decodes lazily from the mapping.
          meta->U8(kReprInt64Compressed);
          meta->U32(writer->AddPodSection(label,
                                          col.compressed_int64()->blob()));
        } else {
          meta->U8(kReprInt64);
          meta->U32(writer->AddPodSection(label, col.int64_data()));
        }
        break;
      case DataType::kFloat64:
        meta->U8(kReprFloat64);
        meta->U32(writer->AddPodSection(label, col.float64_data()));
        break;
      case DataType::kString:
        if (col.dict_encoded() && col.compressed()) {
          meta->U8(kReprDictStringCompressed);
          meta->U32(writer->AddPodSection(label,
                                          col.compressed_codes()->blob()));
          meta->U32(dicts->Add(col.dict()));
        } else if (col.dict_encoded()) {
          meta->U8(kReprDictString);
          meta->U32(writer->AddPodSection(label, col.dict_codes()));
          meta->U32(dicts->Add(col.dict()));
        } else {
          meta->U8(kReprPlainString);
          std::string blob;
          std::vector<uint64_t> offsets;
          offsets.reserve(col.size() + 1);
          offsets.push_back(0);
          for (size_t r = 0; r < col.size(); ++r) {
            blob += col.StringAt(r);
            offsets.push_back(blob.size());
          }
          meta->U32(writer->AddOwnedSection(label + ".blob",
                                            std::move(blob)));
          meta->U32(writer->AddOwnedSection(label + ".off",
                                            PodBytes(offsets)));
        }
        break;
    }
  }
}

Result<RelationPtr> DecodeRelation(
    const std::shared_ptr<const SnapshotReader>& snap,
    const std::vector<StringDictPtr>& dicts, ByteReader* meta) {
  const uint64_t rows = meta->U64();
  const uint32_t ncols = meta->U32();
  SPINDLE_RETURN_IF_ERROR(meta->status());
  Schema schema;
  std::vector<ColumnPtr> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name = meta->Str();
    const uint8_t type_tag = meta->U8();
    const uint8_t repr = meta->U8();
    SPINDLE_RETURN_IF_ERROR(meta->status());
    if (type_tag > static_cast<uint8_t>(DataType::kString)) {
      return Corrupt(snap->path(), "column '" + name +
                                       "' has unknown type tag " +
                                       std::to_string(type_tag));
    }
    const DataType type = static_cast<DataType>(type_tag);
    Column col(type);
    switch (repr) {
      case kReprInt64: {
        const uint32_t sec = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const int64_t> data,
                                 snap->PodSection<int64_t>(sec));
        if (data.size() != rows) {
          return Corrupt(snap->path(), "column '" + name + "' length");
        }
        col = Column::BorrowInt64(data, snap);
        break;
      }
      case kReprFloat64: {
        const uint32_t sec = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const double> data,
                                 snap->PodSection<double>(sec));
        if (data.size() != rows) {
          return Corrupt(snap->path(), "column '" + name + "' length");
        }
        col = Column::BorrowFloat64(data, snap);
        break;
      }
      case kReprPlainString: {
        const uint32_t blob_sec = meta->U32();
        const uint32_t off_sec = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const char> blob,
                                 snap->PodSection<char>(blob_sec));
        SPINDLE_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                                 snap->PodSection<uint64_t>(off_sec));
        if (offsets.size() != rows + 1) {
          return Corrupt(snap->path(), "column '" + name + "' offsets");
        }
        std::vector<std::string> strings;
        strings.reserve(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          if (offsets[r] > offsets[r + 1] || offsets[r + 1] > blob.size()) {
            return Corrupt(snap->path(),
                           "column '" + name + "' non-monotone offsets");
          }
          strings.emplace_back(blob.data() + offsets[r],
                               offsets[r + 1] - offsets[r]);
        }
        col = Column::MakeString(std::move(strings));
        break;
      }
      case kReprDictString: {
        const uint32_t sec = meta->U32();
        const uint32_t dict_slot = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const int32_t> codes,
                                 snap->PodSection<int32_t>(sec));
        if (codes.size() != rows) {
          return Corrupt(snap->path(), "column '" + name + "' length");
        }
        if (dict_slot >= dicts.size()) {
          return Corrupt(snap->path(), "column '" + name +
                                           "' references missing dict " +
                                           std::to_string(dict_slot));
        }
        const StringDictPtr& dict = dicts[dict_slot];
        const int32_t limit = static_cast<int32_t>(dict->size());
        for (int32_t code : codes) {
          if (code < 0 || code >= limit) {
            return Corrupt(snap->path(),
                           "column '" + name + "' has out-of-range code");
          }
        }
        col = Column::BorrowDictString(codes, dict, snap);
        break;
      }
      case kReprInt64Compressed: {
        const uint32_t sec = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const uint8_t> blob,
                                 snap->PodSection<uint8_t>(sec));
        // Untrusted parse: validates geometry and decode-checks every
        // segment, so later lazy accesses cannot fail.
        auto parsed = blockcodec::CompressedInts<int64_t>::Parse(blob, snap);
        if (!parsed.ok()) {
          return Corrupt(snap->path(), "column '" + name + "': " +
                                           parsed.status().message());
        }
        if (parsed.ValueOrDie()->size() != rows) {
          return Corrupt(snap->path(), "column '" + name + "' length");
        }
        col = Column::MakeCompressedInt64(parsed.MoveValueOrDie());
        break;
      }
      case kReprDictStringCompressed: {
        const uint32_t sec = meta->U32();
        const uint32_t dict_slot = meta->U32();
        SPINDLE_RETURN_IF_ERROR(meta->status());
        SPINDLE_ASSIGN_OR_RETURN(std::span<const uint8_t> blob,
                                 snap->PodSection<uint8_t>(sec));
        if (dict_slot >= dicts.size()) {
          return Corrupt(snap->path(), "column '" + name +
                                           "' references missing dict " +
                                           std::to_string(dict_slot));
        }
        const StringDictPtr& dict = dicts[dict_slot];
        // min/max bounds make Parse's decode-check pass double as the
        // dict-code range check the uncompressed path does explicitly.
        auto parsed = blockcodec::CompressedInts<int32_t>::Parse(
            blob, snap, /*trusted=*/false, /*min_value=*/0,
            /*max_value=*/static_cast<int64_t>(dict->size()) - 1);
        if (!parsed.ok()) {
          return Corrupt(snap->path(), "column '" + name + "': " +
                                           parsed.status().message());
        }
        if (parsed.ValueOrDie()->size() != rows) {
          return Corrupt(snap->path(), "column '" + name + "' length");
        }
        col = Column::MakeCompressedDictString(parsed.MoveValueOrDie(), dict);
        break;
      }
      default:
        return Corrupt(snap->path(), "column '" + name +
                                         "' has unknown representation " +
                                         std::to_string(repr));
    }
    if (col.type() != type) {
      return Corrupt(snap->path(),
                     "column '" + name + "' representation/type mismatch");
    }
    schema.AddField({std::move(name), type});
    cols.push_back(std::make_shared<const Column>(std::move(col)));
  }
  return Relation::MakeShared(std::move(schema), std::move(cols));
}

void EncodeCatalog(SnapshotWriter* writer, SnapshotDictTable* dicts,
                   const Catalog& catalog) {
  ByteWriter meta;
  const std::vector<std::string> names = catalog.List();
  meta.U32(static_cast<uint32_t>(names.size()));
  for (size_t i = 0; i < names.size(); ++i) {
    meta.Str(names[i]);
    RelationPtr rel = catalog.Get(names[i]).ValueOrDie();
    EncodeRelation(writer, dicts, *rel, "t" + std::to_string(i), &meta);
  }
  writer->AddOwnedSection("catalog", meta.Take());
}

Result<size_t> DecodeCatalog(const std::shared_ptr<const SnapshotReader>& snap,
                             const std::vector<StringDictPtr>& dicts,
                             Catalog* catalog) {
  SPINDLE_ASSIGN_OR_RETURN(uint32_t sec, snap->FindSection("catalog"));
  SPINDLE_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                           snap->SectionBytes(sec));
  ByteReader meta(bytes);
  const uint32_t count = meta.U32();
  SPINDLE_RETURN_IF_ERROR(meta.status());
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = meta.Str();
    SPINDLE_RETURN_IF_ERROR(meta.status());
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr rel,
                             DecodeRelation(snap, dicts, &meta));
    // Dict columns were encoded at save time; plain Register preserves
    // the decoded representation (RegisterEncoded would re-intern and
    // drop the zero-copy mapping).
    catalog->Register(name, std::move(rel));
  }
  return static_cast<size_t>(count);
}

}  // namespace spindle
