#include "storage/column.h"

#include <cassert>
#include <cstring>

#include "common/hash.h"
#include "common/str.h"

namespace spindle {

Column Column::MakeInt64(std::vector<int64_t> data) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(data);
  return c;
}

Column Column::MakeFloat64(std::vector<double> data) {
  Column c(DataType::kFloat64);
  c.floats_ = std::move(data);
  return c;
}

Column Column::MakeString(std::vector<std::string> data) {
  Column c(DataType::kString);
  c.strings_ = std::move(data);
  return c;
}

Column Column::MakeDictString(std::vector<int32_t> codes,
                              StringDictPtr dict) {
  assert(dict != nullptr);
#ifndef NDEBUG
  for (int32_t code : codes) {
    assert(code >= 0 && code < dict->size());
  }
#endif
  Column c(DataType::kString);
  c.codes_ = std::move(codes);
  c.dict_ = std::move(dict);
  return c;
}

Column Column::DictEncode(const std::shared_ptr<StringDict>& dict) const {
  assert(type_ == DataType::kString);
  if (dict_ != nullptr && dict == nullptr) {
    return MakeDictString(codes_, dict_);  // already encoded, share as-is
  }
  std::shared_ptr<StringDict> target =
      dict != nullptr ? dict : std::make_shared<StringDict>();
  const int64_t first = target->first_id();
  std::vector<int32_t> codes;
  codes.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    codes.push_back(static_cast<int32_t>(target->Intern(StringAt(i)) - first));
  }
  return MakeDictString(std::move(codes), std::move(target));
}

Column Column::DecodeToPlain() const {
  assert(type_ == DataType::kString);
  if (dict_ == nullptr) return *this;
  std::vector<std::string> data;
  data.reserve(codes_.size());
  for (int32_t code : codes_) {
    data.push_back(dict_->StringAtPos(static_cast<size_t>(code)));
  }
  return MakeString(std::move(data));
}

void Column::DecayToPlain() {
  if (dict_ == nullptr) return;
  strings_.reserve(codes_.size());
  for (int32_t code : codes_) {
    strings_.push_back(dict_->StringAtPos(static_cast<size_t>(code)));
  }
  codes_.clear();
  codes_.shrink_to_fit();
  dict_.reset();
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return floats_.size();
    case DataType::kString:
      return dict_ ? codes_.size() : strings_.size();
  }
  return 0;
}

void Column::AppendString(std::string v) {
  DecayToPlain();
  strings_.push_back(std::move(v));
}

Status Column::AppendValue(const Value& v) {
  if (ValueType(v) != type_) {
    return Status::TypeMismatch(std::string("cannot append ") +
                                DataTypeName(ValueType(v)) + " to " +
                                DataTypeName(type_) + " column");
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(std::get<int64_t>(v));
      break;
    case DataType::kFloat64:
      floats_.push_back(std::get<double>(v));
      break;
    case DataType::kString:
      AppendString(std::get<std::string>(v));
      break;
  }
  return Status::OK();
}

void Column::AppendFrom(const Column& other, size_t row) {
  assert(other.type_ == type_);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[row]);
      break;
    case DataType::kFloat64:
      floats_.push_back(other.floats_[row]);
      break;
    case DataType::kString:
      if (other.dict_ != nullptr) {
        // Adopt the source dict when still empty, so that gather/append
        // pipelines over one dict column stay code-only end to end.
        if (dict_ == nullptr && strings_.empty()) dict_ = other.dict_;
        if (dict_ == other.dict_) {
          codes_.push_back(other.codes_[row]);
          return;
        }
      }
      AppendString(other.StringAt(row));
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kFloat64:
      return Value(floats_[i]);
    case DataType::kString:
      return Value(StringAt(i));
  }
  return Value(int64_t{0});
}

std::string Column::ToStringAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(ints_[i]);
    case DataType::kFloat64:
      return FormatDouble(floats_[i]);
    case DataType::kString:
      return StringAt(i);
  }
  return "";
}

uint64_t Column::HashAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(ints_[i]));
    case DataType::kFloat64: {
      double d = floats_[i];
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case DataType::kString:
      // Memoized in the dict: O(1) instead of O(len), and identical to the
      // plain-representation hash so mixed-representation joins agree.
      return dict_ ? dict_->HashAtPos(static_cast<size_t>(codes_[i]))
                   : HashBytes(strings_[i]);
  }
  return 0;
}

bool Column::ElementEquals(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64:
      return ints_[i] == other.ints_[j];
    case DataType::kFloat64:
      return floats_[i] == other.floats_[j];
    case DataType::kString:
      if (dict_ != nullptr && dict_ == other.dict_) {
        return codes_[i] == other.codes_[j];  // code fast path
      }
      return StringAt(i) == other.StringAt(j);
  }
  return false;
}

int Column::ElementCompare(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64: {
      int64_t a = ints_[i], b = other.ints_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kFloat64: {
      double a = floats_[i], b = other.floats_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      // Dict order is insertion order, not sort order, so equal codes are
      // the only shortcut; the sort kernels build rank tables instead.
      if (dict_ != nullptr && dict_ == other.dict_ &&
          codes_[i] == other.codes_[j]) {
        return 0;
      }
      return StringAt(i).compare(other.StringAt(j));
  }
  return 0;
}

Column Column::Gather(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  switch (type_) {
    case DataType::kInt64:
      out.ints_.reserve(indices.size());
      for (uint32_t i : indices) out.ints_.push_back(ints_[i]);
      break;
    case DataType::kFloat64:
      out.floats_.reserve(indices.size());
      for (uint32_t i : indices) out.floats_.push_back(floats_[i]);
      break;
    case DataType::kString:
      if (dict_ != nullptr) {
        // Zero-copy for the payload: gather 4-byte codes, share the dict.
        out.dict_ = dict_;
        out.codes_.reserve(indices.size());
        for (uint32_t i : indices) out.codes_.push_back(codes_[i]);
      } else {
        out.strings_.reserve(indices.size());
        for (uint32_t i : indices) out.strings_.push_back(strings_[i]);
      }
      break;
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  switch (type_) {
    case DataType::kInt64:
      return ints_ == other.ints_;
    case DataType::kFloat64:
      return floats_ == other.floats_;
    case DataType::kString:
      if (dict_ != nullptr && dict_ == other.dict_) {
        return codes_ == other.codes_;
      }
      for (size_t i = 0; i < size(); ++i) {
        if (StringAt(i) != other.StringAt(i)) return false;
      }
      return true;
  }
  return false;
}

size_t Column::ByteSizeExcludingDict() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size() * sizeof(int64_t);
    case DataType::kFloat64:
      return floats_.size() * sizeof(double);
    case DataType::kString: {
      if (dict_ != nullptr) return codes_.size() * sizeof(int32_t);
      size_t bytes = strings_.size() * sizeof(std::string);
      // Heap payloads: strings beyond the SSO buffer own an allocation of
      // capacity()+1 bytes; SSO strings live inside sizeof(std::string),
      // already counted above.
      const size_t sso_cap = std::string().capacity();
      for (const auto& s : strings_) {
        if (s.capacity() > sso_cap) bytes += s.capacity() + 1;
      }
      return bytes;
    }
  }
  return 0;
}

size_t Column::ByteSize() const {
  size_t bytes = ByteSizeExcludingDict();
  if (dict_ != nullptr) bytes += dict_->ByteSize();
  return bytes;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      floats_.reserve(n);
      break;
    case DataType::kString:
      if (dict_ != nullptr) {
        codes_.reserve(n);
      } else {
        strings_.reserve(n);
      }
      break;
  }
}

}  // namespace spindle
