#include "storage/column.h"

#include <cassert>
#include <cstring>

#include "common/hash.h"
#include "common/str.h"

namespace spindle {

Column Column::MakeInt64(std::vector<int64_t> data) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(data);
  return c;
}

Column Column::MakeFloat64(std::vector<double> data) {
  Column c(DataType::kFloat64);
  c.floats_ = std::move(data);
  return c;
}

Column Column::MakeString(std::vector<std::string> data) {
  Column c(DataType::kString);
  c.strings_ = std::move(data);
  return c;
}

Column Column::MakeDictString(std::vector<int32_t> codes,
                              StringDictPtr dict) {
  assert(dict != nullptr);
#ifndef NDEBUG
  for (int32_t code : codes) {
    assert(code >= 0 && code < dict->size());
  }
#endif
  Column c(DataType::kString);
  c.codes_ = std::move(codes);
  c.dict_ = std::move(dict);
  return c;
}

Column Column::BorrowInt64(std::span<const int64_t> data,
                           std::shared_ptr<const void> owner) {
  assert(owner != nullptr);
  Column c(DataType::kInt64);
  c.bints_ = data;
  c.owner_ = std::move(owner);
  return c;
}

Column Column::BorrowFloat64(std::span<const double> data,
                             std::shared_ptr<const void> owner) {
  assert(owner != nullptr);
  Column c(DataType::kFloat64);
  c.bfloats_ = data;
  c.owner_ = std::move(owner);
  return c;
}

Column Column::MakeCompressedInt64(blockcodec::CompressedInt64Ptr data) {
  assert(data != nullptr);
  Column c(DataType::kInt64);
  c.comp64_ = std::move(data);
  return c;
}

Column Column::MakeCompressedDictString(blockcodec::CompressedInt32Ptr codes,
                                        StringDictPtr dict) {
  assert(codes != nullptr && dict != nullptr);
  Column c(DataType::kString);
  c.comp32_ = std::move(codes);
  c.dict_ = std::move(dict);
  return c;
}

Column Column::Compressed() const {
  if (compressed()) return *this;
  switch (type_) {
    case DataType::kInt64: {
      auto parsed = blockcodec::CompressedInts<int64_t>::Parse(
          blockcodec::EncodeIntBlob<int64_t>(int64_data()),
          /*trusted=*/true);
      return MakeCompressedInt64(parsed.MoveValueOrDie());
    }
    case DataType::kString: {
      if (dict_ == nullptr) return *this;  // plain strings stay plain
      auto parsed = blockcodec::CompressedInts<int32_t>::Parse(
          blockcodec::EncodeIntBlob<int32_t>(dict_codes()),
          /*trusted=*/true);
      return MakeCompressedDictString(parsed.MoveValueOrDie(), dict_);
    }
    case DataType::kFloat64:
      return *this;  // no float codec; cold floats are rare in the views
  }
  return *this;
}

size_t Column::CompressedByteSize() const {
  if (comp64_ != nullptr) return comp64_->CompressedBytes();
  if (comp32_ != nullptr) return comp32_->CompressedBytes();
  return 0;
}

Column Column::BorrowDictString(std::span<const int32_t> codes,
                                StringDictPtr dict,
                                std::shared_ptr<const void> owner) {
  assert(dict != nullptr && owner != nullptr);
#ifndef NDEBUG
  for (int32_t code : codes) {
    assert(code >= 0 && code < dict->size());
  }
#endif
  Column c(DataType::kString);
  c.bcodes_ = codes;
  c.dict_ = std::move(dict);
  c.owner_ = std::move(owner);
  return c;
}

Column Column::DictEncode(const std::shared_ptr<StringDict>& dict) const {
  assert(type_ == DataType::kString);
  if (dict_ != nullptr && dict == nullptr) {
    // Already encoded, share as-is (materializing codes when mapped).
    auto codes = dict_codes();
    return MakeDictString(std::vector<int32_t>(codes.begin(), codes.end()),
                          dict_);
  }
  std::shared_ptr<StringDict> target =
      dict != nullptr ? dict : std::make_shared<StringDict>();
  const int64_t first = target->first_id();
  std::vector<int32_t> codes;
  codes.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    codes.push_back(static_cast<int32_t>(target->Intern(StringAt(i)) - first));
  }
  return MakeDictString(std::move(codes), std::move(target));
}

Column Column::DecodeToPlain() const {
  assert(type_ == DataType::kString);
  if (dict_ == nullptr) return *this;
  std::vector<std::string> data;
  data.reserve(size());
  for (int32_t code : dict_codes()) {
    data.push_back(dict_->StringAtPos(static_cast<size_t>(code)));
  }
  return MakeString(std::move(data));
}

void Column::DecayToPlain() {
  assert(!mapped());
  if (dict_ == nullptr) return;
  strings_.reserve(codes_.size());
  for (int32_t code : codes_) {
    strings_.push_back(dict_->StringAtPos(static_cast<size_t>(code)));
  }
  codes_.clear();
  codes_.shrink_to_fit();
  dict_.reset();
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      if (comp64_ != nullptr) return comp64_->size();
      return owner_ ? bints_.size() : ints_.size();
    case DataType::kFloat64:
      return owner_ ? bfloats_.size() : floats_.size();
    case DataType::kString:
      if (comp32_ != nullptr) return comp32_->size();
      if (dict_) return owner_ ? bcodes_.size() : codes_.size();
      return strings_.size();
  }
  return 0;
}

void Column::AppendString(std::string v) {
  assert(!mapped() && !compressed());
  DecayToPlain();
  strings_.push_back(std::move(v));
}

Status Column::AppendValue(const Value& v) {
  if (ValueType(v) != type_) {
    return Status::TypeMismatch(std::string("cannot append ") +
                                DataTypeName(ValueType(v)) + " to " +
                                DataTypeName(type_) + " column");
  }
  assert(!mapped() && !compressed());
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(std::get<int64_t>(v));
      break;
    case DataType::kFloat64:
      floats_.push_back(std::get<double>(v));
      break;
    case DataType::kString:
      AppendString(std::get<std::string>(v));
      break;
  }
  return Status::OK();
}

void Column::AppendFrom(const Column& other, size_t row) {
  assert(other.type_ == type_);
  assert(!mapped() && !compressed());
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.Int64At(row));
      break;
    case DataType::kFloat64:
      floats_.push_back(other.Float64At(row));
      break;
    case DataType::kString:
      if (other.dict_ != nullptr) {
        // Adopt the source dict when still empty, so that gather/append
        // pipelines over one dict column stay code-only end to end.
        if (dict_ == nullptr && strings_.empty()) dict_ = other.dict_;
        if (dict_ == other.dict_) {
          codes_.push_back(other.CodeAt(row));
          return;
        }
      }
      AppendString(other.StringAt(row));
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(Int64At(i));
    case DataType::kFloat64:
      return Value(Float64At(i));
    case DataType::kString:
      return Value(StringAt(i));
  }
  return Value(int64_t{0});
}

std::string Column::ToStringAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(Int64At(i));
    case DataType::kFloat64:
      return FormatDouble(Float64At(i));
    case DataType::kString:
      return StringAt(i);
  }
  return "";
}

uint64_t Column::HashAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(Int64At(i)));
    case DataType::kFloat64: {
      double d = Float64At(i);
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case DataType::kString:
      // Memoized in the dict: O(1) instead of O(len), and identical to the
      // plain-representation hash so mixed-representation joins agree.
      return dict_ ? dict_->HashAtPos(static_cast<size_t>(CodeAt(i)))
                   : HashBytes(strings_[i]);
  }
  return 0;
}

bool Column::ElementEquals(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64:
      return Int64At(i) == other.Int64At(j);
    case DataType::kFloat64:
      return Float64At(i) == other.Float64At(j);
    case DataType::kString:
      if (dict_ != nullptr && dict_ == other.dict_) {
        return CodeAt(i) == other.CodeAt(j);  // code fast path
      }
      return StringAt(i) == other.StringAt(j);
  }
  return false;
}

int Column::ElementCompare(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64: {
      int64_t a = Int64At(i), b = other.Int64At(j);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kFloat64: {
      double a = Float64At(i), b = other.Float64At(j);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      // Dict order is insertion order, not sort order, so equal codes are
      // the only shortcut; the sort kernels build rank tables instead.
      if (dict_ != nullptr && dict_ == other.dict_ &&
          CodeAt(i) == other.CodeAt(j)) {
        return 0;
      }
      return StringAt(i).compare(other.StringAt(j));
  }
  return 0;
}

Column Column::Gather(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  switch (type_) {
    case DataType::kInt64: {
      auto src = int64_data();
      out.ints_.reserve(indices.size());
      for (uint32_t i : indices) out.ints_.push_back(src[i]);
      break;
    }
    case DataType::kFloat64: {
      auto src = float64_data();
      out.floats_.reserve(indices.size());
      for (uint32_t i : indices) out.floats_.push_back(src[i]);
      break;
    }
    case DataType::kString:
      if (dict_ != nullptr) {
        // Zero-copy for the payload: gather 4-byte codes, share the dict.
        auto src = dict_codes();
        out.dict_ = dict_;
        out.codes_.reserve(indices.size());
        for (uint32_t i : indices) out.codes_.push_back(src[i]);
      } else {
        out.strings_.reserve(indices.size());
        for (uint32_t i : indices) out.strings_.push_back(strings_[i]);
      }
      break;
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  switch (type_) {
    case DataType::kInt64: {
      auto a = int64_data(), b = other.int64_data();
      return std::equal(a.begin(), a.end(), b.begin());
    }
    case DataType::kFloat64: {
      auto a = float64_data(), b = other.float64_data();
      return std::equal(a.begin(), a.end(), b.begin());
    }
    case DataType::kString:
      if (dict_ != nullptr && dict_ == other.dict_) {
        auto a = dict_codes(), b = other.dict_codes();
        return std::equal(a.begin(), a.end(), b.begin());
      }
      for (size_t i = 0; i < size(); ++i) {
        if (StringAt(i) != other.StringAt(i)) return false;
      }
      return true;
  }
  return false;
}

size_t Column::ByteSizeExcludingDict() const {
  // Mapped columns consume page cache, not heap; MappedByteSize reports
  // that side so the two are never double-counted. A compressed column's
  // heap cost is whatever it has lazily decoded so far (the blob itself
  // is CompressedByteSize).
  if (comp64_ != nullptr) return comp64_->DecodedHeapBytes();
  if (comp32_ != nullptr) return comp32_->DecodedHeapBytes();
  if (mapped()) return 0;
  switch (type_) {
    case DataType::kInt64:
      return ints_.size() * sizeof(int64_t);
    case DataType::kFloat64:
      return floats_.size() * sizeof(double);
    case DataType::kString: {
      if (dict_ != nullptr) return codes_.size() * sizeof(int32_t);
      size_t bytes = strings_.size() * sizeof(std::string);
      // Heap payloads: strings beyond the SSO buffer own an allocation of
      // capacity()+1 bytes; SSO strings live inside sizeof(std::string),
      // already counted above.
      const size_t sso_cap = std::string().capacity();
      for (const auto& s : strings_) {
        if (s.capacity() > sso_cap) bytes += s.capacity() + 1;
      }
      return bytes;
    }
  }
  return 0;
}

size_t Column::ByteSize() const {
  size_t bytes = ByteSizeExcludingDict();
  if (dict_ != nullptr) bytes += dict_->ByteSize();
  return bytes;
}

size_t Column::MappedByteSize() const {
  if (!mapped()) return 0;
  switch (type_) {
    case DataType::kInt64:
      return bints_.size_bytes();
    case DataType::kFloat64:
      return bfloats_.size_bytes();
    case DataType::kString:
      return bcodes_.size_bytes();
  }
  return 0;
}

void Column::Reserve(size_t n) {
  assert(!mapped());
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      floats_.reserve(n);
      break;
    case DataType::kString:
      if (dict_ != nullptr) {
        codes_.reserve(n);
      } else {
        strings_.reserve(n);
      }
      break;
  }
}

}  // namespace spindle
