#include "storage/column.h"

#include <cassert>
#include <cstring>

#include "common/hash.h"
#include "common/str.h"

namespace spindle {

Column Column::MakeInt64(std::vector<int64_t> data) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(data);
  return c;
}

Column Column::MakeFloat64(std::vector<double> data) {
  Column c(DataType::kFloat64);
  c.floats_ = std::move(data);
  return c;
}

Column Column::MakeString(std::vector<std::string> data) {
  Column c(DataType::kString);
  c.strings_ = std::move(data);
  return c;
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return floats_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

Status Column::AppendValue(const Value& v) {
  if (ValueType(v) != type_) {
    return Status::TypeMismatch(std::string("cannot append ") +
                                DataTypeName(ValueType(v)) + " to " +
                                DataTypeName(type_) + " column");
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(std::get<int64_t>(v));
      break;
    case DataType::kFloat64:
      floats_.push_back(std::get<double>(v));
      break;
    case DataType::kString:
      strings_.push_back(std::get<std::string>(v));
      break;
  }
  return Status::OK();
}

void Column::AppendFrom(const Column& other, size_t row) {
  assert(other.type_ == type_);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[row]);
      break;
    case DataType::kFloat64:
      floats_.push_back(other.floats_[row]);
      break;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kFloat64:
      return Value(floats_[i]);
    case DataType::kString:
      return Value(strings_[i]);
  }
  return Value(int64_t{0});
}

std::string Column::ToStringAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(ints_[i]);
    case DataType::kFloat64:
      return FormatDouble(floats_[i]);
    case DataType::kString:
      return strings_[i];
  }
  return "";
}

uint64_t Column::HashAt(size_t i) const {
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(ints_[i]));
    case DataType::kFloat64: {
      double d = floats_[i];
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case DataType::kString:
      return HashBytes(strings_[i]);
  }
  return 0;
}

bool Column::ElementEquals(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64:
      return ints_[i] == other.ints_[j];
    case DataType::kFloat64:
      return floats_[i] == other.floats_[j];
    case DataType::kString:
      return strings_[i] == other.strings_[j];
  }
  return false;
}

int Column::ElementCompare(size_t i, const Column& other, size_t j) const {
  assert(type_ == other.type_);
  switch (type_) {
    case DataType::kInt64: {
      int64_t a = ints_[i], b = other.ints_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kFloat64: {
      double a = floats_[i], b = other.floats_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      return strings_[i].compare(other.strings_[j]);
  }
  return 0;
}

Column Column::Gather(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  switch (type_) {
    case DataType::kInt64:
      for (uint32_t i : indices) out.ints_.push_back(ints_[i]);
      break;
    case DataType::kFloat64:
      for (uint32_t i : indices) out.floats_.push_back(floats_[i]);
      break;
    case DataType::kString:
      for (uint32_t i : indices) out.strings_.push_back(strings_[i]);
      break;
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  switch (type_) {
    case DataType::kInt64:
      return ints_ == other.ints_;
    case DataType::kFloat64:
      return floats_ == other.floats_;
    case DataType::kString:
      return strings_ == other.strings_;
  }
  return false;
}

size_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size() * sizeof(int64_t);
    case DataType::kFloat64:
      return floats_.size() * sizeof(double);
    case DataType::kString: {
      size_t bytes = strings_.size() * sizeof(std::string);
      for (const auto& s : strings_) bytes += s.capacity();
      return bytes;
    }
  }
  return 0;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      floats_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

}  // namespace spindle
