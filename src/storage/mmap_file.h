/// \file mmap_file.h
/// \brief Read-only memory-mapped files and the typed views the zero-copy
/// storage layer hands out over them.
///
/// A production engine does not rebuild its indexes from raw text on every
/// process start: it maps an on-disk snapshot and serves from the mapping,
/// letting the OS page cache — not the heap — hold cold data. MmapFile is
/// the primitive: it maps a whole file read-only and keeps it mapped until
/// the last reference dies. MappedVector<T> / MappedVectorOfVectors<T> are
/// the typed views layered on top (snapshot.h builds them from file
/// sections): a MappedVector either *owns* a heap vector or *borrows* a
/// span of mapped memory, so every consumer (columns, postings, skip
/// tables) is representation-transparent — exactly the pattern PR 1
/// established for dict codes, now applied to the whole storage layer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace spindle {

/// \brief A whole file mapped read-only into the address space.
///
/// The mapping lives for the lifetime of the MmapFile object; consumers
/// that borrow spans of it keep the file alive through a
/// shared_ptr<const MmapFile> (or any shared owner handle derived from
/// it), so a column can outlive the Snapshot that produced it.
class MmapFile {
 public:
  /// \brief Opens and maps `path` read-only. Fails with a clean Status on
  /// missing files, permission errors or mmap failure — never UB.
  static Result<std::shared_ptr<const MmapFile>> OpenReadOnly(
      const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MmapFile(std::string path, const std::byte* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief (offset, length) into a flattened value array — the element type
/// of ragged (vector-of-vectors) layouts. A plain trivially-copyable
/// struct (std::pair is not guaranteed trivially copyable) so arrays of it
/// can live in mapped sections verbatim.
struct OffsetLen {
  uint32_t offset = 0;
  uint32_t length = 0;

  bool operator==(const OffsetLen&) const = default;
};
static_assert(std::is_trivially_copyable_v<OffsetLen> &&
              sizeof(OffsetLen) == 8);

/// \brief A typed immutable vector whose storage is either an owned heap
/// std::vector<T> or a borrowed span of mapped (or otherwise externally
/// owned) memory — the MemoryMappedVector<T> pattern.
///
/// Accessors are identical in both modes, so data structures built over
/// MappedVector (flattened postings, skip tables, doc arrays) execute
/// unchanged whether they were built in memory or mapped from a snapshot.
template <typename T>
class MappedVector {
 public:
  MappedVector() = default;

  /// \brief Takes ownership of a heap vector (the in-memory build path).
  static MappedVector Own(std::vector<T> v) {
    MappedVector m;
    m.owned_ = std::move(v);
    m.view_ = std::span<const T>(m.owned_);
    return m;
  }

  /// \brief Borrows mapped memory; `owner` keeps the mapping alive.
  static MappedVector Borrow(std::span<const T> view,
                             std::shared_ptr<const void> owner) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types can be mapped");
    MappedVector m;
    m.view_ = view;
    m.owner_ = std::move(owner);
    return m;
  }

  // Moves must rebuild the span when the storage is owned (the vector's
  // heap buffer survives the move, but the span object must follow it).
  MappedVector(MappedVector&& other) noexcept { *this = std::move(other); }
  MappedVector& operator=(MappedVector&& other) noexcept {
    owned_ = std::move(other.owned_);
    owner_ = std::move(other.owner_);
    view_ = owner_ == nullptr ? std::span<const T>(owned_) : other.view_;
    other.view_ = {};
    return *this;
  }
  MappedVector(const MappedVector& other) { *this = other; }
  MappedVector& operator=(const MappedVector& other) {
    owned_ = other.owned_;
    owner_ = other.owner_;
    view_ = owner_ == nullptr ? std::span<const T>(owned_) : other.view_;
    return *this;
  }

  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }
  std::span<const T> span() const { return view_; }

  /// \brief True when the storage is borrowed (mapped) rather than owned.
  bool mapped() const { return owner_ != nullptr; }

  /// \brief Heap bytes owned by this vector (0 when mapped).
  size_t HeapBytes() const {
    return mapped() ? 0 : owned_.capacity() * sizeof(T);
  }
  /// \brief Mapped (page-cache) bytes viewed by this vector (0 when
  /// owned). Reported separately from heap so cache accounting does not
  /// double-charge the page cache.
  size_t MappedBytes() const {
    return mapped() ? view_.size_bytes() : 0;
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  std::shared_ptr<const void> owner_;
};

/// \brief Ragged data (a vector of variable-length vectors) flattened into
/// one value array plus an offsets array of n+1 monotone positions —
/// the MemoryMappedVectorOfVectors pattern. Row i is
/// values[offsets[i], offsets[i+1]).
template <typename T>
struct MappedVectorOfVectors {
  MappedVector<T> values;
  MappedVector<uint64_t> offsets;  ///< size() + 1 entries, monotone

  size_t size() const {
    return offsets.size() == 0 ? 0 : offsets.size() - 1;
  }
  std::span<const T> operator[](size_t i) const {
    return values.span().subspan(
        static_cast<size_t>(offsets[i]),
        static_cast<size_t>(offsets[i + 1] - offsets[i]));
  }

  /// \brief Validates monotone offsets bounded by the value count (call
  /// once after mapping untrusted data; indexing assumes it).
  bool Valid() const {
    if (offsets.size() == 0) return values.size() == 0;
    if (offsets[0] != 0) return false;
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) return false;
    }
    return offsets[offsets.size() - 1] == values.size();
  }
};

}  // namespace spindle
