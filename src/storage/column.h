/// \file column.h
/// \brief A typed, densely-stored column of values — the unit of storage in
/// Spindle's column-store kernel (the analogue of a MonetDB BAT tail).

#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_codec.h"
#include "storage/string_dict.h"
#include "storage/types.h"

namespace spindle {

/// \brief A typed column. Exactly one physical representation is active:
/// int64, float64, plain strings, or dictionary-encoded strings (int32
/// codes into a shared immutable StringDict). Dictionary-encoded columns
/// are logically still DataType::kString — every accessor (StringAt,
/// ValueAt, HashAt, ElementEquals, ...) is representation-transparent, so
/// call sites never need to know which representation they got.
///
/// Orthogonally to the logical representation, the backing storage of
/// int64/float64/dict-code columns is either *owned* (heap vectors, the
/// build path) or *borrowed* (read-only spans of a memory-mapped snapshot,
/// kept alive by a shared owner handle). Borrowed columns are immutable:
/// all accessors work identically, mutation asserts. Raw data accessors
/// return std::span<const T>, so vectorized kernels are storage-agnostic
/// and spans survive Filter -> Join -> TopK untouched.
///
/// Dict-encoding invariants (see docs/column_representations.md):
///  - codes are 0-based positions into dict()->strings(): the string of
///    row i is dict()->StringAtPos(code). Codes are always in range.
///  - the dict is shared (shared_ptr<const StringDict>) and immutable;
///    Gather/AppendFrom copy 4-byte codes and bump the refcount instead of
///    copying strings.
///  - HashAt of a dict column equals HashBytes of the string (memoized in
///    the dict), so plain and dict columns hash identically.
///  - appending a raw string (or a row from a column with a *different*
///    dict) to a dict column decays it to the plain representation; the
///    kernels avoid this on hot paths via RecodeToShared (see ops.h).
///
/// Columns are mutated only while being built; once handed to a Relation
/// they are treated as immutable and shared via shared_ptr<const Column>.
class Column {
 public:
  /// \brief Creates an empty column of the given type.
  explicit Column(DataType type) : type_(type) {}

  /// \name Construction from existing vectors.
  /// @{
  static Column MakeInt64(std::vector<int64_t> data);
  static Column MakeFloat64(std::vector<double> data);
  static Column MakeString(std::vector<std::string> data);
  /// Dictionary-encoded string column: `codes[i]` is the 0-based position
  /// of row i's string in `dict`. All codes must be in [0, dict->size()).
  static Column MakeDictString(std::vector<int32_t> codes,
                               StringDictPtr dict);
  /// @}

  /// \name Construction over borrowed (mapped) storage.
  /// The spans must stay valid for the lifetime of `owner`; the column
  /// holds `owner` (typically a SnapshotReader handle) so mapped data can
  /// outlive the snapshot object that produced it.
  /// @{
  static Column BorrowInt64(std::span<const int64_t> data,
                            std::shared_ptr<const void> owner);
  static Column BorrowFloat64(std::span<const double> data,
                              std::shared_ptr<const void> owner);
  static Column BorrowDictString(std::span<const int32_t> codes,
                                 StringDictPtr dict,
                                 std::shared_ptr<const void> owner);
  /// @}

  /// \name Compressed (cold) physical representation.
  /// int64 values / dict codes held as a zigzag-varint segment stream
  /// (storage/block_codec.h) that decompresses segment-wise on first
  /// access. Logically identical to the plain representation — every
  /// accessor decodes transparently — but the physical footprint is the
  /// blob until a consumer touches the data. The blob may itself be
  /// borrowed from a snapshot mapping (the CompressedInts holds the
  /// owner); either way it is accounted as CompressedByteSize, never as
  /// heap or mapped bytes.
  /// @{
  static Column MakeCompressedInt64(blockcodec::CompressedInt64Ptr data);
  static Column MakeCompressedDictString(blockcodec::CompressedInt32Ptr codes,
                                         StringDictPtr dict);
  /// True when the physical representation is a compressed segment
  /// stream (possibly partially decoded).
  bool compressed() const {
    return comp64_ != nullptr || comp32_ != nullptr;
  }
  /// Returns a compressed copy of this column when its representation
  /// supports it (int64, dict-encoded string); other types (and already
  /// compressed columns) come back unchanged.
  Column Compressed() const;
  /// Encoded blob bytes (0 for uncompressed columns).
  size_t CompressedByteSize() const;
  /// The compressed backing stores (null when the representation is not
  /// the corresponding compressed one); snapshot encoding writes the blob
  /// verbatim instead of re-encoding.
  const blockcodec::CompressedInt64Ptr& compressed_int64() const {
    return comp64_;
  }
  const blockcodec::CompressedInt32Ptr& compressed_codes() const {
    return comp32_;
  }
  /// @}

  DataType type() const { return type_; }
  size_t size() const;

  /// \brief True when the backing storage is a borrowed mapped span
  /// rather than owned heap vectors.
  bool mapped() const { return owner_ != nullptr; }

  /// \name Dictionary representation.
  /// @{
  bool dict_encoded() const { return dict_ != nullptr; }
  const StringDictPtr& dict() const { return dict_; }
  std::span<const int32_t> dict_codes() const {
    if (comp32_ != nullptr) return comp32_->All();
    return owner_ ? bcodes_ : std::span<const int32_t>(codes_);
  }
  int32_t CodeAt(size_t i) const {
    if (comp32_ != nullptr) return comp32_->At(i);
    return owner_ ? bcodes_[i] : codes_[i];
  }
  /// Returns a dict-encoded copy of this kString column. If `dict` is
  /// given, strings are interned into it (letting several columns share
  /// one dict); otherwise a fresh dict is built. Already-encoded columns
  /// are returned as cheap code copies (re-interned if `dict` is given).
  Column DictEncode(const std::shared_ptr<StringDict>& dict = nullptr) const;
  /// Returns a plain-string copy of this kString column.
  Column DecodeToPlain() const;
  /// @}

  /// \name Append (build phase only; asserts on mapped columns).
  /// @{
  void AppendInt64(int64_t v) {
    assert(!mapped() && !compressed());
    ints_.push_back(v);
  }
  void AppendFloat64(double v) {
    assert(!mapped());
    floats_.push_back(v);
  }
  void AppendString(std::string v);
  /// Appends a Value; returns TypeMismatch if it does not match type().
  Status AppendValue(const Value& v);
  /// Appends row `row` of `other` (same type required; checked by assert).
  /// If this column is empty it adopts `other`'s dict, so appending rows
  /// of one dict column builds another dict column code-by-code. `other`
  /// may be mapped; *this must not be.
  void AppendFrom(const Column& other, size_t row);
  /// @}

  /// \name Typed element access (caller must respect type()).
  /// @{
  int64_t Int64At(size_t i) const {
    if (comp64_ != nullptr) return comp64_->At(i);
    return owner_ ? bints_[i] : ints_[i];
  }
  double Float64At(size_t i) const {
    return owner_ ? bfloats_[i] : floats_[i];
  }
  const std::string& StringAt(size_t i) const {
    return dict_ ? dict_->StringAtPos(static_cast<size_t>(CodeAt(i)))
                 : strings_[i];
  }
  /// @}

  /// \brief Generic element access (allocates for strings).
  Value ValueAt(size_t i) const;

  /// \brief Renders element i for display.
  std::string ToStringAt(size_t i) const;

  /// \brief Hash of element i, suitable for join/aggregate keys.
  /// Representation-independent: a dict column hashes to the same value as
  /// a plain column holding the same strings.
  uint64_t HashAt(size_t i) const;

  /// \brief True if element i of *this equals element j of other
  /// (same type required). When both columns share one dict instance this
  /// is a 4-byte code comparison.
  bool ElementEquals(size_t i, const Column& other, size_t j) const;

  /// \brief Three-way comparison of element i vs element j of other:
  /// negative / 0 / positive. Same type required.
  int ElementCompare(size_t i, const Column& other, size_t j) const;

  /// \brief Returns a new column containing rows at `indices`, in order.
  /// For dict columns this copies codes and shares the dict (zero-copy for
  /// the string payload). The result owns its storage even when *this is
  /// mapped — intermediates never pin the snapshot.
  Column Gather(const std::vector<uint32_t>& indices) const;

  /// \brief Deep logical equality (type, size and all elements); a plain
  /// and a dict column holding the same strings are equal, as are owned
  /// and mapped columns holding the same values.
  bool Equals(const Column& other) const;

  /// \brief Approximate heap footprint in bytes (used by the cache
  /// budget). Includes the dict for dict columns; use
  /// ByteSizeExcludingDict plus per-instance dict accounting to avoid
  /// double-charging shared dicts (Relation::ByteSize does this).
  /// Borrowed (mapped) storage is page cache, not heap: it is excluded
  /// here and reported by MappedByteSize instead.
  size_t ByteSize() const;

  /// \brief ByteSize without the shared dict (codes / own buffers only).
  size_t ByteSizeExcludingDict() const;

  /// \brief Bytes of borrowed mapped storage viewed by this column (0 for
  /// owned columns). Kept separate from ByteSize so cache budgets and
  /// STATS don't double-charge the OS page cache.
  size_t MappedByteSize() const;

  /// \name Raw data access for vectorized kernels.
  /// Spans are representation- and storage-agnostic: they view the owned
  /// heap vector or the borrowed mapping, whichever is active. Note:
  /// string_data()/mutable_string() expose the *plain* backing vector,
  /// which is empty for dict-encoded columns — check dict_encoded() first
  /// or use the transparent accessors.
  /// @{
  std::span<const int64_t> int64_data() const {
    if (comp64_ != nullptr) return comp64_->All();
    return owner_ ? bints_ : std::span<const int64_t>(ints_);
  }
  std::span<const double> float64_data() const {
    return owner_ ? bfloats_ : std::span<const double>(floats_);
  }
  const std::vector<std::string>& string_data() const { return strings_; }
  std::vector<int64_t>& mutable_int64() {
    assert(!mapped() && !compressed());
    return ints_;
  }
  std::vector<double>& mutable_float64() {
    assert(!mapped());
    return floats_;
  }
  std::vector<std::string>& mutable_string() {
    assert(!mapped());
    return strings_;
  }
  /// @}

  void Reserve(size_t n);

 private:
  /// Rewrites a dict column into plain strings in place (build phase
  /// only) so heterogeneous appends stay correct.
  void DecayToPlain();

  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> floats_;
  std::vector<std::string> strings_;
  // Dictionary representation (type_ == kString, dict_ != nullptr).
  std::vector<int32_t> codes_;
  StringDictPtr dict_;
  // Borrowed (mapped) storage: active when owner_ != nullptr. The spans
  // alias memory kept alive by owner_; the vectors above stay empty.
  std::shared_ptr<const void> owner_;
  std::span<const int64_t> bints_;
  std::span<const double> bfloats_;
  std::span<const int32_t> bcodes_;
  // Compressed storage: active when non-null (kInt64 / dict codes). The
  // vectors and spans above stay empty; owner_ stays null (the
  // CompressedInts keeps any mapping alive itself).
  blockcodec::CompressedInt64Ptr comp64_;
  blockcodec::CompressedInt32Ptr comp32_;
};

using ColumnPtr = std::shared_ptr<const Column>;

}  // namespace spindle
