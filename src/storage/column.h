/// \file column.h
/// \brief A typed, densely-stored column of values — the unit of storage in
/// Spindle's column-store kernel (the analogue of a MonetDB BAT tail).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace spindle {

/// \brief A typed column. Exactly one of the three backing vectors is used,
/// selected by type().
///
/// Columns are mutated only while being built; once handed to a Relation
/// they are treated as immutable and shared via shared_ptr<const Column>.
class Column {
 public:
  /// \brief Creates an empty column of the given type.
  explicit Column(DataType type) : type_(type) {}

  /// \name Construction from existing vectors.
  /// @{
  static Column MakeInt64(std::vector<int64_t> data);
  static Column MakeFloat64(std::vector<double> data);
  static Column MakeString(std::vector<std::string> data);
  /// @}

  DataType type() const { return type_; }
  size_t size() const;

  /// \name Append (build phase only).
  /// @{
  void AppendInt64(int64_t v) { ints_.push_back(v); }
  void AppendFloat64(double v) { floats_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }
  /// Appends a Value; returns TypeMismatch if it does not match type().
  Status AppendValue(const Value& v);
  /// Appends row `row` of `other` (same type required; checked by assert).
  void AppendFrom(const Column& other, size_t row);
  /// @}

  /// \name Typed element access (caller must respect type()).
  /// @{
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double Float64At(size_t i) const { return floats_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }
  /// @}

  /// \brief Generic element access (allocates for strings).
  Value ValueAt(size_t i) const;

  /// \brief Renders element i for display.
  std::string ToStringAt(size_t i) const;

  /// \brief Hash of element i, suitable for join/aggregate keys.
  uint64_t HashAt(size_t i) const;

  /// \brief True if element i of *this equals element j of other
  /// (same type required).
  bool ElementEquals(size_t i, const Column& other, size_t j) const;

  /// \brief Three-way comparison of element i vs element j of other:
  /// negative / 0 / positive. Same type required.
  int ElementCompare(size_t i, const Column& other, size_t j) const;

  /// \brief Returns a new column containing rows at `indices`, in order.
  Column Gather(const std::vector<uint32_t>& indices) const;

  /// \brief Deep equality (type, size and all elements).
  bool Equals(const Column& other) const;

  /// \brief Approximate heap footprint in bytes (used by the cache budget).
  size_t ByteSize() const;

  /// \name Raw data access for vectorized kernels.
  /// @{
  const std::vector<int64_t>& int64_data() const { return ints_; }
  const std::vector<double>& float64_data() const { return floats_; }
  const std::vector<std::string>& string_data() const { return strings_; }
  std::vector<int64_t>& mutable_int64() { return ints_; }
  std::vector<double>& mutable_float64() { return floats_; }
  std::vector<std::string>& mutable_string() { return strings_; }
  /// @}

  void Reserve(size_t n);

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> floats_;
  std::vector<std::string> strings_;
};

using ColumnPtr = std::shared_ptr<const Column>;

}  // namespace spindle
