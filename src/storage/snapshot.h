/// \file snapshot.h
/// \brief The persistent snapshot format: a sectioned, checksummed,
/// memory-mappable container for catalog relations, string dictionaries
/// and text indexes.
///
/// File layout (all little-endian, same-architecture format):
///
///   [SnapshotHeader, 64 B]                      magic, version, checksums
///   [SnapshotSectionEntry x num_sections]       the table of contents
///   [padding to 64-byte boundary]
///   [section 0 payload][padding to 64]
///   [section 1 payload][padding to 64]
///   ...
///
/// Every section payload starts on a 64-byte boundary, so any
/// trivially-copyable array stored in a section can be reinterpreted in
/// place with correct alignment — this is what makes load zero-copy: the
/// engine's columns and postings borrow spans of the mapping instead of
/// deserializing. Two checksums (TOC and payload region) plus magic,
/// version and size validation mean a corrupted or truncated file is
/// rejected with a clean Status, never undefined behavior.
///
/// This layer knows about raw sections, dictionaries, relations and the
/// catalog. Index serialization (TextIndex/ImpactIndex) lives one layer up
/// in src/ir/index_snapshot.{h,cc}, which composes the same writer/reader.

#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/mmap_file.h"
#include "storage/relation.h"
#include "storage/string_dict.h"

namespace spindle {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'S', 'P', 'I', 'N',
                                           'S', 'N', 'P', '1'};
/// Bump on any incompatible layout change (see docs/persistence.md for the
/// bump policy); readers reject files with a different version.
///  v1: initial format.
///  v2: compressed representations — relation columns may carry the
///      Int64Compressed / DictStringCompressed repr tags and impact
///      postings may be stored as bit-packed blocks (.packed/.poff
///      sections) instead of flat .ords/.tfs arrays.
inline constexpr uint32_t kSnapshotFormatVersion = 2;
/// Section payload alignment. 64 covers every scalar/struct the engine
/// maps and matches the cache-line size morsel kernels assume.
inline constexpr size_t kSnapshotSectionAlign = 64;
/// Max length (including NUL) of a section name in the TOC.
inline constexpr size_t kSnapshotSectionNameLen = 40;

/// \brief Fixed 64-byte file header.
struct SnapshotHeader {
  char magic[8];
  uint32_t format_version;
  uint32_t num_sections;
  uint64_t file_size;         ///< must equal the actual file size
  uint64_t toc_offset;        ///< byte offset of the TOC (== 64)
  uint64_t toc_checksum;      ///< checksum of the TOC bytes
  uint64_t payload_checksum;  ///< checksum of [payload_start, file_size)
  char reserved[16];
};
static_assert(sizeof(SnapshotHeader) == 64);

/// \brief Fixed 64-byte TOC entry. Names are diagnostic labels (truncated
/// to fit); cross-references between sections use integer section ids.
struct SnapshotSectionEntry {
  char name[kSnapshotSectionNameLen];  ///< NUL-padded
  uint64_t offset;                     ///< absolute, 64-byte aligned
  uint64_t size;                       ///< payload bytes (padding excluded)
  uint64_t reserved;
};
static_assert(sizeof(SnapshotSectionEntry) == 64);

/// \brief FNV-1a-style checksum folded over 8-byte words (fast enough to
/// validate multi-hundred-MB snapshots at load without dominating restart
/// time; not cryptographic — it detects corruption, not tampering).
uint64_t SnapshotChecksum(const std::byte* data, size_t size);

/// \brief Accumulates named sections and writes the container file.
///
/// Sections added by pointer must stay alive until Finish(); use
/// AddOwnedSection for transient buffers (the writer keeps the string).
class SnapshotWriter {
 public:
  /// \brief Registers a section; returns its id for cross-references.
  uint32_t AddSection(std::string_view name, const void* data, size_t size);

  /// \brief Registers a section backed by a buffer the writer owns.
  uint32_t AddOwnedSection(std::string_view name, std::string bytes);

  /// \brief Registers an array of trivially-copyable values as a section.
  template <typename T>
  uint32_t AddPodSection(std::string_view name, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    return AddSection(name, values.data(), values.size_bytes());
  }

  size_t num_sections() const { return sections_.size(); }

  /// \brief Writes header + TOC + aligned payloads to `path` (atomic-ish:
  /// written to `path` directly; callers wanting atomicity write to a temp
  /// path and rename). The writer is single-use.
  Status Finish(const std::string& path);

 private:
  struct Pending {
    std::string name;
    const void* data;  // null when owned
    size_t size;
    std::string owned;
  };
  std::vector<Pending> sections_;
};

/// \brief An open, validated snapshot file.
///
/// Open() maps the file and validates magic, version, size, TOC bounds,
/// section bounds/alignment and both checksums before returning; any
/// mismatch yields a Status. Typed accessors re-check element size and
/// alignment, so a logically inconsistent (but checksum-valid) file also
/// fails cleanly.
class SnapshotReader : public std::enable_shared_from_this<SnapshotReader> {
 public:
  static Result<std::shared_ptr<const SnapshotReader>> Open(
      const std::string& path);

  size_t num_sections() const { return sections_.size(); }
  size_t file_size() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

  /// \brief Section id by exact name; NotFound if absent.
  Result<uint32_t> FindSection(const std::string& name) const;
  bool HasSection(const std::string& name) const;

  const std::string& SectionName(uint32_t id) const {
    return sections_[id].name;
  }

  /// \brief Raw payload bytes of a section.
  Result<std::span<const std::byte>> SectionBytes(uint32_t id) const;

  /// \brief Section reinterpreted as an array of T (zero-copy). Fails if
  /// the payload size is not a multiple of sizeof(T) or misaligned.
  template <typename T>
  Result<std::span<const T>> PodSection(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    SPINDLE_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                             SectionBytes(id));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::ParseError(
          "snapshot section '" + SectionName(id) + "' has " +
          std::to_string(bytes.size()) + " bytes, not a multiple of " +
          std::to_string(sizeof(T)));
    }
    if (reinterpret_cast<uintptr_t>(bytes.data()) % alignof(T) != 0) {
      return Status::Internal("snapshot section '" + SectionName(id) +
                              "' is misaligned for element size " +
                              std::to_string(sizeof(T)));
    }
    return std::span<const T>(reinterpret_cast<const T*>(bytes.data()),
                              bytes.size() / sizeof(T));
  }

  /// \brief Section as a MappedVector borrowing the mapping; the returned
  /// vector keeps the snapshot (and thus the mapping) alive.
  template <typename T>
  Result<MappedVector<T>> MappedSection(uint32_t id) const {
    SPINDLE_ASSIGN_OR_RETURN(std::span<const T> view, PodSection<T>(id));
    return MappedVector<T>::Borrow(view, shared_from_this());
  }

  /// \brief Shared handle to the underlying mapping, usable as the owner
  /// token for borrowed columns.
  std::shared_ptr<const MmapFile> file() const { return file_; }

 private:
  struct Section {
    std::string name;
    uint64_t offset;
    uint64_t size;
  };

  explicit SnapshotReader(std::shared_ptr<const MmapFile> file)
      : file_(std::move(file)) {}

  std::shared_ptr<const MmapFile> file_;
  std::vector<Section> sections_;
  std::map<std::string, uint32_t, std::less<>> by_name_;
};

/// \brief Bounds-unchecked appender for little meta sections (schemas,
/// name tables, cross-references). Fixed-width integers, IEEE doubles and
/// length-prefixed strings.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void I32(int32_t v) { Pod(v); }
  void I64(int64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void Pod(T v) {
    char tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_.append(tmp, sizeof(T));
  }

  std::string buf_;
};

/// \brief Bounds-checked cursor over a meta section. Reads past the end
/// latch a failure and return zero values; callers check ok()/status()
/// once at a convenient boundary instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  uint8_t U8() { return Pod<uint8_t>(); }
  uint32_t U32() { return Pod<uint32_t>(); }
  uint64_t U64() { return Pod<uint64_t>(); }
  int32_t I32() { return Pod<int32_t>(); }
  int64_t I64() { return Pod<int64_t>(); }
  double F64() { return Pod<double>(); }
  std::string Str() {
    uint64_t n = U64();
    if (failed_ || n > data_.size() - pos_) {
      failed_ = true;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  Status status() const {
    if (!failed_) return Status::OK();
    return Status::ParseError("snapshot metadata truncated at offset " +
                              std::to_string(pos_));
  }

 private:
  template <typename T>
  T Pod() {
    if (failed_ || sizeof(T) > data_.size() - pos_) {
      failed_ = true;
      return T();
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// \brief Deduplicating writer-side registry of string dictionaries.
///
/// Relations that share a StringDict (e.g. a text index's term_doc and
/// termdict views) reference the same dict table slot, so sharing survives
/// the round trip and joins still compare codes without re-encoding.
/// Strings are serialized in id order, so reloaded dicts assign identical
/// codes — the root of bit-identical query results.
class SnapshotDictTable {
 public:
  explicit SnapshotDictTable(SnapshotWriter* writer) : writer_(writer) {}

  /// \brief Registers a dict (writing its sections on first sight) and
  /// returns its slot in the table.
  uint32_t Add(const StringDictPtr& dict);

  /// \brief Encodes the "dicts" meta section.
  std::string EncodeMeta() const;

 private:
  struct Entry {
    int64_t first_id;
    uint64_t count;
    uint32_t blob_section;
    uint32_t offsets_section;
    uint32_t hashes_section;
  };

  SnapshotWriter* writer_;
  std::map<const StringDict*, uint32_t> by_ptr_;
  std::vector<Entry> entries_;
};

/// \brief Decodes the "dicts" meta section; strings are materialized on
/// the heap (vocabularies are small next to postings) but hashes are
/// loaded, not recomputed.
Result<std::vector<StringDictPtr>> DecodeSnapshotDicts(
    const std::shared_ptr<const SnapshotReader>& snap);

/// \brief Serializes one relation: bulk column data goes into sections
/// (named "<prefix>.<col>"), layout metadata is appended to `meta`.
/// Dict-encoded columns reference `dicts` slots.
void EncodeRelation(SnapshotWriter* writer, SnapshotDictTable* dicts,
                    const Relation& rel, const std::string& prefix,
                    ByteWriter* meta);

/// \brief Decodes one relation encoded by EncodeRelation. Numeric and
/// dict-code columns borrow the mapping (zero-copy); plain string columns
/// are materialized.
Result<RelationPtr> DecodeRelation(
    const std::shared_ptr<const SnapshotReader>& snap,
    const std::vector<StringDictPtr>& dicts, ByteReader* meta);

/// \brief Serializes every catalog relation (sorted by name) plus the
/// shared dict table into `writer` sections "catalog" and "dicts".
void EncodeCatalog(SnapshotWriter* writer, SnapshotDictTable* dicts,
                   const Catalog& catalog);

/// \brief Registers every relation from the snapshot's "catalog" section
/// into `catalog` (replacing same-named entries, bumping versions, in the
/// saved order so version assignment is deterministic).
Result<size_t> DecodeCatalog(const std::shared_ptr<const SnapshotReader>& snap,
                             const std::vector<StringDictPtr>& dicts,
                             Catalog* catalog);

}  // namespace spindle
