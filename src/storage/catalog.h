/// \file catalog.h
/// \brief Named base relations with version and epoch counters.
///
/// Versions let the materialization cache invalidate entries whose
/// producing expressions read a table that has since been replaced.
/// Epochs track *logical* content: live ingestion (src/ingest/) bumps a
/// table's epoch on every accepted write without touching the stored
/// relation, so plan signatures that embed the epoch stop matching
/// pre-write cache entries while index caches — keyed on the version
/// only — keep serving the unchanged compacted relation.
///
/// All methods are thread-safe: writers install new versions while
/// concurrent readers resolve signatures and fetch relations.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

/// \brief A mutable namespace of immutable relations.
class Catalog {
 public:
  /// \brief Registers or replaces a relation; bumps its version and epoch.
  void Register(const std::string& name, RelationPtr rel);

  /// \brief Like Register, but dictionary-encodes any plain string columns
  /// first (one shared dict per relation), so strings loaded into the
  /// catalog are interned once and every downstream kernel works on codes.
  void RegisterEncoded(const std::string& name, RelationPtr rel);

  /// \brief Removes a relation; missing names are ignored.
  void Drop(const std::string& name);

  /// \brief Looks a relation up by name.
  Result<RelationPtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// \brief Monotonic version of a table; 0 if absent. Bumped only when
  /// the stored relation is replaced (Register / compaction install).
  uint64_t Version(const std::string& name) const;

  /// \brief Monotonic logical epoch of a table; 0 if absent. Bumped by
  /// Register and by BumpEpoch — i.e. on every change to the table's
  /// logical content, including live writes that leave the stored
  /// relation untouched.
  uint64_t Epoch(const std::string& name) const;

  /// \brief Advances the epoch without replacing the relation; returns
  /// the new epoch (0 for unknown names). Called once per accepted live
  /// write so epoch-tagged plan signatures stop matching stale
  /// materialization-cache entries.
  uint64_t BumpEpoch(const std::string& name);

  /// \brief All registered names, sorted.
  std::vector<std::string> List() const;

  /// \brief Replaces `name` with a copy whose compressible columns are
  /// compressed (CompressColumns) WITHOUT bumping the version: the
  /// logical content is identical, so caches and index signatures keyed
  /// on "table@version" stay valid. Returns false for unknown names.
  bool Compress(const std::string& name);

  /// \brief Catalog-wide storage accounting, three ways. Heap, mapped
  /// and compressed bytes are disjoint: mapped snapshot pages live in
  /// the OS page cache, compressed blobs are counted once wherever they
  /// live, and neither is charged as heap. Each shared StringDict is
  /// counted once across the whole catalog, no matter how many relations
  /// reference it.
  using ByteStats = StorageByteStats;
  ByteStats ByteSizes() const;

 private:
  struct Entry {
    RelationPtr rel;
    uint64_t version = 0;
    uint64_t epoch = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t next_version_ = 1;
  uint64_t next_epoch_ = 1;
};

}  // namespace spindle
