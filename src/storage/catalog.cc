#include "storage/catalog.h"

namespace spindle {

void Catalog::Register(const std::string& name, RelationPtr rel) {
  Entry& e = entries_[name];
  e.rel = std::move(rel);
  e.version = next_version_++;
}

void Catalog::RegisterEncoded(const std::string& name, RelationPtr rel) {
  Register(name, DictEncodeStringColumns(rel));
}

void Catalog::Drop(const std::string& name) { entries_.erase(name); }

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.rel;
}

uint64_t Catalog::Version(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace spindle
