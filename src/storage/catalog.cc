#include "storage/catalog.h"

#include <set>

#include "storage/string_dict.h"

namespace spindle {

void Catalog::Register(const std::string& name, RelationPtr rel) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  e.rel = std::move(rel);
  e.version = next_version_++;
  e.epoch = next_epoch_++;
}

void Catalog::RegisterEncoded(const std::string& name, RelationPtr rel) {
  Register(name, DictEncodeStringColumns(rel));
}

void Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(name);
}

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.rel;
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

uint64_t Catalog::Version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

uint64_t Catalog::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.epoch;
}

uint64_t Catalog::BumpEpoch(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  it->second.epoch = next_epoch_++;
  return it->second.epoch;
}

std::vector<std::string> Catalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool Catalog::Compress(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.rel == nullptr) return false;
  it->second.rel = CompressColumns(it->second.rel);
  return true;
}

Catalog::ByteStats Catalog::ByteSizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteStats stats;
  std::set<const StringDict*> seen;
  for (const auto& [name, entry] : entries_) {
    if (entry.rel == nullptr) continue;
    stats.heap_bytes += entry.rel->ByteSizeExcludingDicts();
    stats.mapped_bytes += entry.rel->MappedByteSize();
    stats.compressed_bytes += entry.rel->CompressedByteSize();
    for (const StringDictPtr& dict : entry.rel->CollectDicts()) {
      if (seen.insert(dict.get()).second) {
        stats.heap_bytes += dict->ByteSize();
      }
    }
  }
  return stats;
}

}  // namespace spindle
