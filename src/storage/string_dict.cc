#include "storage/string_dict.h"

#include <cassert>
#include <memory>

#include "common/hash.h"

namespace spindle {

Result<std::shared_ptr<StringDict>> StringDict::FromIdOrderedStrings(
    int64_t first_id, std::vector<std::string> strings,
    std::vector<uint64_t> hashes) {
  if (strings.size() != hashes.size()) {
    return Status::InvalidArgument(
        "dict restore: " + std::to_string(strings.size()) + " strings but " +
        std::to_string(hashes.size()) + " hashes");
  }
  auto dict = std::make_shared<StringDict>(first_id);
  dict->strings_ = std::move(strings);
  dict->hashes_ = std::move(hashes);
  dict->index_.reserve(dict->strings_.size());
  for (size_t i = 0; i < dict->strings_.size(); ++i) {
    assert(dict->hashes_[i] == HashBytes(dict->strings_[i]));
    auto [it, inserted] = dict->index_.emplace(
        dict->strings_[i], first_id + static_cast<int64_t>(i));
    if (!inserted) {
      return Status::InvalidArgument("dict restore: duplicate string '" +
                                     dict->strings_[i] + "'");
    }
  }
  return std::shared_ptr<StringDict>(std::move(dict));
}

int64_t StringDict::Intern(std::string_view s) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  // Deques of strings would keep views stable; with a vector we must
  // re-index after reallocation. Reserve geometrically to amortize.
  if (strings_.size() == strings_.capacity()) {
    size_t new_cap = strings_.capacity() < 16 ? 16 : strings_.capacity() * 2;
    std::vector<std::string> grown;
    grown.reserve(new_cap);
    for (auto& old : strings_) grown.push_back(std::move(old));
    strings_ = std::move(grown);
    index_.clear();
    for (size_t i = 0; i < strings_.size(); ++i) {
      index_.emplace(strings_[i], first_id_ + static_cast<int64_t>(i));
    }
  }
  strings_.emplace_back(s);
  hashes_.push_back(HashBytes(strings_.back()));
  int64_t id = first_id_ + static_cast<int64_t>(strings_.size()) - 1;
  index_.emplace(strings_.back(), id);
  return id;
}

int64_t StringDict::Lookup(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

size_t StringDict::ByteSize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = strings_.capacity() * sizeof(std::string) +
                 hashes_.capacity() * sizeof(uint64_t);
  const size_t sso_cap = std::string().capacity();
  for (const auto& s : strings_) {
    if (s.capacity() > sso_cap) bytes += s.capacity() + 1;
  }
  // Rough charge for the hash index nodes (key view + id + bucket link).
  bytes += index_.size() *
           (sizeof(std::string_view) + sizeof(int64_t) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace spindle
