/// \file types.h
/// \brief Column data types and the Value variant.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>

namespace spindle {

/// \brief Physical type of a column.
///
/// Spindle partitions data by physical type (the paper's "data-driven
/// partitioning by the physical data type of objects"): the triple store
/// keeps integer, float and string objects in separate tables rather than
/// serializing every literal into strings.
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
};

/// \brief Stable lowercase name ("int64", "float64", "string").
const char* DataTypeName(DataType type);

/// \brief A single cell value. The alternative index matches DataType.
using Value = std::variant<int64_t, double, std::string>;

/// \brief The DataType of a Value.
inline DataType ValueType(const Value& v) {
  return static_cast<DataType>(v.index());
}

/// \brief Renders a Value for display ("42", "0.5", "abc").
std::string ValueToString(const Value& v);

/// \brief Three-way storage accounting used across columns, relations,
/// the catalog and indexes: owned heap bytes, borrowed mapped (page-
/// cache) bytes, and compressed physical bytes (counted once wherever
/// the encoded stream lives — heap or mapping — and never double-charged
/// to the other two buckets).
struct StorageByteStats {
  size_t heap_bytes = 0;
  size_t mapped_bytes = 0;
  size_t compressed_bytes = 0;

  size_t total() const { return heap_bytes + mapped_bytes + compressed_bytes; }

  StorageByteStats& operator+=(const StorageByteStats& o) {
    heap_bytes += o.heap_bytes;
    mapped_bytes += o.mapped_bytes;
    compressed_bytes += o.compressed_bytes;
    return *this;
  }
};

}  // namespace spindle
