/// \file block_codec.h
/// \brief Lossless block compression for postings and cold columns.
///
/// Two codecs live here, both lossless on integers so decompressed data is
/// bit-identical to what was encoded (scoring arithmetic never changes):
///
///  1. **Posting blocks** — frame-of-reference delta encoding for one
///     impact-index block (<= ImpactIndex::kBlockSize doc ordinals plus
///     their term frequencies). Ordinals are strictly increasing, so the
///     block stores the first ordinal verbatim and the remaining ones as
///     (gap - 1) deltas bit-packed at the block's own width; tfs are
///     stored as (tf - min_tf) deltas at their own width. Dense runs and
///     constant tfs pack at width 0 — a 128-posting block of consecutive
///     ordinals with tf == 1 costs 10 bytes instead of 1024.
///
///  2. **Integer segments** — a general-purpose zigzag-varint byte stream
///     for irregular int64/int32 arrays (column values, dict codes), cut
///     into independently decodable segments of kIntSegmentLen values so
///     a cold column can decompress segment-wise on first access.
///
/// Decoders are bounds-safe on arbitrary bytes: a truncated or bit-flipped
/// payload yields `false` / a ParseError, never an out-of-bounds read —
/// snapshot loading validates every stream once so the query-time hot path
/// can decode without rechecking.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace spindle::blockcodec {

/// Values per compressed integer segment. Large enough that varint decode
/// amortizes, small enough that a point access (Column::Int64At on a cold
/// column) decodes a few KB, not the whole column.
constexpr size_t kIntSegmentLen = 4096;

// ---------------------------------------------------------------------------
// Posting-block codec (frame-of-reference + bit packing)
// ---------------------------------------------------------------------------

/// Fixed 10-byte header preceding the packed bits of one posting block:
/// [u32 first_ord][i32 tf_base][u8 ord_width][u8 tf_width], then
/// ceil((n-1)*ord_width/8) bytes of ordinal gap deltas and
/// ceil(n*tf_width/8) bytes of tf deltas (each byte-aligned, LSB-first).
constexpr size_t kPostingBlockHeaderBytes = 10;

/// \brief Appends the encoded block to `out`. `ords` must be strictly
/// increasing; `n >= 1`. Returns the encoded size in bytes.
size_t EncodePostingBlock(const uint32_t* ords, const int32_t* tfs, size_t n,
                          std::vector<uint8_t>* out);

/// \brief Decodes a block of exactly `n` postings from `data[0, size)`
/// into `ords`/`tfs` (each with room for `n` values). Returns false —
/// without reading or writing out of bounds — when the payload is
/// malformed (truncated, bad widths, non-monotone ordinals, gap overflow).
bool DecodePostingBlock(const uint8_t* data, size_t size, size_t n,
                        uint32_t* ords, int32_t* tfs);

/// \brief Per-query decode scratch: one (ords, tfs) slot of `block_size`
/// values per posting list, allocated once so block decode inside the
/// pruning kernel allocates nothing.
class BlockDecoder {
 public:
  BlockDecoder(size_t slots, size_t block_size)
      : block_size_(block_size),
        ords_(slots * block_size),
        tfs_(slots * block_size) {}

  uint32_t* ords(size_t slot) { return ords_.data() + slot * block_size_; }
  int32_t* tfs(size_t slot) { return tfs_.data() + slot * block_size_; }

 private:
  size_t block_size_;
  std::vector<uint32_t> ords_;
  std::vector<int32_t> tfs_;
};

// ---------------------------------------------------------------------------
// Varint primitives (shared by the integer-segment codec and callers that
// need an irregular-array fallback)
// ---------------------------------------------------------------------------

/// \brief Appends v as LEB128 (7 bits per byte, high bit = continuation).
void PutVarint64(uint64_t v, std::vector<uint8_t>* out);

/// \brief Reads one varint from [*p, end). Returns false on truncation or
/// a >10-byte encoding; on success advances *p past the varint.
bool GetVarint64(const uint8_t** p, const uint8_t* end, uint64_t* v);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// ---------------------------------------------------------------------------
// Compressed integer vector (segment-wise lazy decode for cold columns)
// ---------------------------------------------------------------------------

/// Self-contained blob layout (little-endian):
///   [u8  magic = kIntBlobMagic]
///   [u8  elem_size (4 or 8)]
///   [u64 count]
///   [u32 seg_len]
///   [u32 num_segments = ceil(count / seg_len)]
///   [u64 payload_end[num_segments]]   cumulative end offsets into payload
///   [payload bytes]
/// Segment s holds values [s*seg_len, min(count, (s+1)*seg_len)) encoded
/// as zigzag varints of delta-from-previous-value (previous = 0 at the
/// segment start, so segments decode independently).
constexpr uint8_t kIntBlobMagic = 0xC5;

/// \brief Encodes `values` into the blob format above.
template <typename T>
std::vector<uint8_t> EncodeIntBlob(std::span<const T> values);

extern template std::vector<uint8_t> EncodeIntBlob<int64_t>(
    std::span<const int64_t>);
extern template std::vector<uint8_t> EncodeIntBlob<int32_t>(
    std::span<const int32_t>);

/// \brief An immutable compressed integer array that decodes segment-wise
/// on first access. Thread-safe: concurrent readers race only through
/// std::call_once per segment.
///
/// The blob is either owned or borrowed (e.g. a span of a snapshot
/// mapping kept alive by `owner`). Parse() validates the container
/// geometry AND fully decode-checks every segment (stream well-formed,
/// exact value count, values within [min_value, max_value]) so later
/// accessors cannot fail; pass `trusted = true` to skip the decode check
/// when the blob was just produced by EncodeIntBlob in this process.
template <typename T>
class CompressedInts {
 public:
  static_assert(std::is_same_v<T, int64_t> || std::is_same_v<T, int32_t>);

  static Result<std::shared_ptr<const CompressedInts<T>>> Parse(
      std::vector<uint8_t> owned_blob, bool trusted = false,
      int64_t min_value = std::numeric_limits<int64_t>::min(),
      int64_t max_value = std::numeric_limits<int64_t>::max());
  static Result<std::shared_ptr<const CompressedInts<T>>> Parse(
      std::span<const uint8_t> blob, std::shared_ptr<const void> owner,
      bool trusted = false,
      int64_t min_value = std::numeric_limits<int64_t>::min(),
      int64_t max_value = std::numeric_limits<int64_t>::max());

  size_t size() const { return count_; }

  /// \brief Value at index i, decoding its segment on first touch.
  T At(size_t i) const {
    EnsureSegment(i / seg_len_);
    return decoded_[i];
  }

  /// \brief The fully decoded array (materializes every segment).
  std::span<const T> All() const {
    for (size_t s = 0; s < num_segments_; ++s) EnsureSegment(s);
    return {decoded_.data(), count_};
  }

  /// \brief The raw encoded bytes (for snapshot sections / re-encode-free
  /// save) and their size — the column's "compressed bytes" accounting.
  std::span<const uint8_t> blob() const { return blob_; }
  size_t CompressedBytes() const { return blob_.size(); }

  /// \brief Heap bytes currently held by decoded segments (grows from 0
  /// to count*sizeof(T) as segments are touched).
  size_t DecodedHeapBytes() const {
    return decoded_segments_.load(std::memory_order_relaxed) > 0
               ? count_ * sizeof(T)
               : 0;
  }

 private:
  CompressedInts() = default;

  static Result<std::shared_ptr<const CompressedInts<T>>> ParseImpl(
      std::shared_ptr<CompressedInts<T>> c, bool trusted, int64_t min_value,
      int64_t max_value);

  void EnsureSegment(size_t s) const;
  /// Decodes segment s into out (validated streams cannot fail; returns
  /// false only for corrupt untrusted input during Parse's check pass).
  bool DecodeSegment(size_t s, T* out) const;

  // Blob storage: owned bytes or a borrowed span kept alive by owner_.
  std::vector<uint8_t> owned_;
  std::shared_ptr<const void> owner_;
  std::span<const uint8_t> blob_;

  // Parsed geometry (pointers into blob_).
  size_t count_ = 0;
  size_t seg_len_ = kIntSegmentLen;
  size_t num_segments_ = 0;
  const uint8_t* payload_ = nullptr;  // payload base
  size_t payload_size_ = 0;
  const uint8_t* ends_ = 0;  // num_segments_ unaligned u64 end offsets

  // Lazy decode state.
  mutable std::once_flag alloc_once_;
  mutable std::unique_ptr<std::once_flag[]> seg_once_;
  mutable std::vector<T> decoded_;
  mutable std::atomic<size_t> decoded_segments_{0};
};

extern template class CompressedInts<int64_t>;
extern template class CompressedInts<int32_t>;

using CompressedInt64Ptr = std::shared_ptr<const CompressedInts<int64_t>>;
using CompressedInt32Ptr = std::shared_ptr<const CompressedInts<int32_t>>;

// ---------------------------------------------------------------------------
// Process-wide compression defaults
// ---------------------------------------------------------------------------

/// \brief What TextIndex::Build compresses by default. Both default on;
/// tests and benches flip them to build literal uncompressed baselines.
/// Reads are lock-free; set only from single-threaded setup code.
struct CompressionOptions {
  bool postings = true;      ///< impact-index posting blocks
  bool cold_columns = true;  ///< int64 / dict-code columns of index views
};

CompressionOptions GetCompressionDefaults();
void SetCompressionDefaults(const CompressionOptions& opts);

/// \brief RAII override for tests: restores the previous defaults.
class ScopedCompressionDefaults {
 public:
  explicit ScopedCompressionDefaults(const CompressionOptions& opts)
      : prev_(GetCompressionDefaults()) {
    SetCompressionDefaults(opts);
  }
  ~ScopedCompressionDefaults() { SetCompressionDefaults(prev_); }

 private:
  CompressionOptions prev_;
};

}  // namespace spindle::blockcodec
