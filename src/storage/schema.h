/// \file schema.h
/// \brief Relation schemas: ordered lists of named, typed fields.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "storage/types.h"

namespace spindle {

/// \brief A named, typed field of a relation.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of fields. Field names need not be unique
/// (intermediate results of self-joins can repeat names); lookup by name
/// returns the first match.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the first field with this name, if any.
  std::optional<size_t> FindField(const std::string& name) const;

  /// \brief True if field count, names and types all match.
  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// \brief True if types match positionally (names ignored) — the
  /// requirement for union compatibility.
  bool TypesEqual(const Schema& other) const;

  /// \brief "(name: type, ...)".
  std::string ToString() const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

 private:
  std::vector<Field> fields_;
};

}  // namespace spindle
