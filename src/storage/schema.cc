#include "storage/schema.h"

namespace spindle {

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

bool Schema::TypesEqual(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type != other.fields_[i].type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace spindle
