#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SPINDLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPINDLE_HAVE_MMAP 0
#endif

namespace spindle {

Result<std::shared_ptr<const MmapFile>> MmapFile::OpenReadOnly(
    const std::string& path) {
#if SPINDLE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fstat('" + path + "'): " + std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  const std::byte* data = nullptr;
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::Internal("mmap('" + path + "', " + std::to_string(size) +
                             " bytes): " + std::strerror(err));
    }
    data = static_cast<const std::byte*>(addr);
  }
  // The mapping stays valid after the descriptor is closed.
  ::close(fd);
  return std::shared_ptr<const MmapFile>(new MmapFile(path, data, size));
#else
  return Status::NotImplemented(
      "memory-mapped snapshots require a POSIX mmap; not available on this "
      "platform");
#endif
}

MmapFile::~MmapFile() {
#if SPINDLE_HAVE_MMAP
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace spindle
