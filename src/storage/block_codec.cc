#include "storage/block_codec.h"

#include <algorithm>

namespace spindle::blockcodec {

namespace {

/// Bits needed to represent v (0 for v == 0).
inline uint8_t BitWidth(uint32_t v) {
  uint8_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

inline void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

/// Appends `count` values at `width` bits each, LSB-first, byte-aligned at
/// the end.
void PackBits(const uint32_t* values, size_t count, uint8_t width,
              std::vector<uint8_t>* out) {
  if (width == 0 || count == 0) return;
  uint64_t acc = 0;
  uint32_t bits = 0;
  for (size_t i = 0; i < count; ++i) {
    acc |= static_cast<uint64_t>(values[i]) << bits;
    bits += width;
    while (bits >= 8) {
      out->push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out->push_back(static_cast<uint8_t>(acc));
}

/// Byte-bounded bit reader: unpacks `count` values at `width` bits each
/// from [p, p + avail). Returns false if the stream is too short.
bool UnpackBits(const uint8_t* p, size_t avail, size_t count, uint8_t width,
                uint32_t* out) {
  if (width == 0) {
    std::fill(out, out + count, 0u);
    return true;
  }
  const size_t need = (count * width + 7) / 8;
  if (need > avail) return false;
  uint64_t acc = 0;
  uint32_t bits = 0;
  const uint32_t mask =
      width >= 32 ? ~0u : ((1u << width) - 1u);
  size_t byte = 0;
  for (size_t i = 0; i < count; ++i) {
    while (bits < width) {
      acc |= static_cast<uint64_t>(p[byte++]) << bits;
      bits += 8;
    }
    out[i] = static_cast<uint32_t>(acc) & mask;
    acc >>= width;
    bits -= width;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Posting-block codec
// ---------------------------------------------------------------------------

size_t EncodePostingBlock(const uint32_t* ords, const int32_t* tfs, size_t n,
                          std::vector<uint8_t>* out) {
  const size_t start = out->size();
  // Ordinal gaps, stored as (gap - 1): strictly increasing ordinals make
  // every gap >= 1, so consecutive runs pack at width 0.
  uint32_t gap_buf[512];
  uint32_t tf_buf[512];
  std::vector<uint32_t> big;  // spill for blocks larger than 512 (unused
                              // by the impact index, kept for generality)
  uint32_t* gd = gap_buf;
  uint32_t* td = tf_buf;
  if (n > 512) {
    big.resize(2 * n);
    gd = big.data();
    td = big.data() + n;
  }
  uint32_t max_gap = 0;
  for (size_t i = 1; i < n; ++i) {
    gd[i - 1] = ords[i] - ords[i - 1] - 1;
    max_gap = std::max(max_gap, gd[i - 1]);
  }
  int32_t tf_base = tfs[0];
  for (size_t i = 1; i < n; ++i) tf_base = std::min(tf_base, tfs[i]);
  uint32_t max_tf_delta = 0;
  for (size_t i = 0; i < n; ++i) {
    td[i] = static_cast<uint32_t>(tfs[i] - tf_base);
    max_tf_delta = std::max(max_tf_delta, td[i]);
  }
  const uint8_t ord_width = BitWidth(max_gap);
  const uint8_t tf_width = BitWidth(max_tf_delta);

  PutU32(ords[0], out);
  PutU32(static_cast<uint32_t>(tf_base), out);
  out->push_back(ord_width);
  out->push_back(tf_width);
  PackBits(gd, n - 1, ord_width, out);
  PackBits(td, n, tf_width, out);
  return out->size() - start;
}

bool DecodePostingBlock(const uint8_t* data, size_t size, size_t n,
                        uint32_t* ords, int32_t* tfs) {
  if (n == 0) return size == 0;
  if (size < kPostingBlockHeaderBytes) return false;
  const uint32_t first_ord = GetU32(data);
  const int32_t tf_base = static_cast<int32_t>(GetU32(data + 4));
  const uint8_t ord_width = data[8];
  const uint8_t tf_width = data[9];
  if (ord_width > 32 || tf_width > 32) return false;
  const uint8_t* p = data + kPostingBlockHeaderBytes;
  size_t avail = size - kPostingBlockHeaderBytes;
  const size_t ord_bytes = ((n - 1) * ord_width + 7) / 8;

  ords[0] = first_ord;
  // Decode gaps into the ords buffer, then prefix-sum in place.
  if (!UnpackBits(p, avail, n - 1, ord_width, ords + 1)) return false;
  uint64_t ord = first_ord;
  for (size_t i = 1; i < n; ++i) {
    ord += static_cast<uint64_t>(ords[i]) + 1;
    if (ord > std::numeric_limits<uint32_t>::max()) return false;
    ords[i] = static_cast<uint32_t>(ord);
  }
  p += ord_bytes;
  avail -= ord_bytes;

  // Decode tf deltas through the tfs buffer (reinterpreted as uint32).
  auto* utfs = reinterpret_cast<uint32_t*>(tfs);
  if (!UnpackBits(p, avail, n, tf_width, utfs)) return false;
  for (size_t i = 0; i < n; ++i) {
    tfs[i] = static_cast<int32_t>(
        static_cast<uint32_t>(tf_base) + utfs[i]);
  }
  // The payload must be exactly the header plus the two packed runs:
  // trailing bytes mean the offsets and the data disagree.
  const size_t tf_bytes = (n * tf_width + 7) / 8;
  return kPostingBlockHeaderBytes + ord_bytes + tf_bytes == size;
}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

void PutVarint64(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint64(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  uint32_t shift = 0;
  const uint8_t* q = *p;
  while (q < end && shift < 70) {
    const uint8_t byte = *q++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compressed integer vector
// ---------------------------------------------------------------------------

template <typename T>
std::vector<uint8_t> EncodeIntBlob(std::span<const T> values) {
  std::vector<uint8_t> out;
  const size_t count = values.size();
  const size_t num_segments = (count + kIntSegmentLen - 1) / kIntSegmentLen;
  out.reserve(18 + num_segments * 8 + count * 2);
  out.push_back(kIntBlobMagic);
  out.push_back(static_cast<uint8_t>(sizeof(T)));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(static_cast<uint64_t>(count) >>
                                       (8 * i)));
  }
  PutU32(static_cast<uint32_t>(kIntSegmentLen), &out);
  PutU32(static_cast<uint32_t>(num_segments), &out);
  const size_t ends_at = out.size();
  out.resize(ends_at + num_segments * 8);  // patched below
  const size_t payload_at = out.size();
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t begin = s * kIntSegmentLen;
    const size_t end = std::min(count, begin + kIntSegmentLen);
    int64_t prev = 0;
    for (size_t i = begin; i < end; ++i) {
      const auto v = static_cast<int64_t>(values[i]);
      // Delta in unsigned space: wraparound-safe for any int64 pair.
      const uint64_t delta = static_cast<uint64_t>(v) -
                             static_cast<uint64_t>(prev);
      PutVarint64(ZigZagEncode(static_cast<int64_t>(delta)), &out);
      prev = v;
    }
    const uint64_t rel_end = out.size() - payload_at;
    for (int b = 0; b < 8; ++b) {
      out[ends_at + s * 8 + b] = static_cast<uint8_t>(rel_end >> (8 * b));
    }
  }
  return out;
}

template std::vector<uint8_t> EncodeIntBlob<int64_t>(std::span<const int64_t>);
template std::vector<uint8_t> EncodeIntBlob<int32_t>(std::span<const int32_t>);

template <typename T>
Result<std::shared_ptr<const CompressedInts<T>>> CompressedInts<T>::Parse(
    std::vector<uint8_t> owned_blob, bool trusted, int64_t min_value,
    int64_t max_value) {
  auto c = std::shared_ptr<CompressedInts<T>>(new CompressedInts<T>());
  c->owned_ = std::move(owned_blob);
  c->blob_ = {c->owned_.data(), c->owned_.size()};
  return ParseImpl(std::move(c), trusted, min_value, max_value);
}

template <typename T>
Result<std::shared_ptr<const CompressedInts<T>>> CompressedInts<T>::Parse(
    std::span<const uint8_t> blob, std::shared_ptr<const void> owner,
    bool trusted, int64_t min_value, int64_t max_value) {
  auto c = std::shared_ptr<CompressedInts<T>>(new CompressedInts<T>());
  c->owner_ = std::move(owner);
  c->blob_ = blob;
  return ParseImpl(std::move(c), trusted, min_value, max_value);
}

template <typename T>
Result<std::shared_ptr<const CompressedInts<T>>> CompressedInts<T>::ParseImpl(
    std::shared_ptr<CompressedInts<T>> c, bool trusted, int64_t min_value,
    int64_t max_value) {
  const std::span<const uint8_t> blob = c->blob_;
  if (blob.size() < 18) {
    return Status::ParseError("compressed ints: blob too small for header");
  }
  if (blob[0] != kIntBlobMagic) {
    return Status::ParseError("compressed ints: bad magic byte");
  }
  if (blob[1] != sizeof(T)) {
    return Status::ParseError("compressed ints: element size mismatch");
  }
  const uint64_t count = GetU64(blob.data() + 2);
  const uint32_t seg_len = GetU32(blob.data() + 10);
  const uint32_t num_segments = GetU32(blob.data() + 14);
  if (seg_len == 0) {
    return Status::ParseError("compressed ints: zero segment length");
  }
  const uint64_t want_segments =
      (count + seg_len - 1) / seg_len;
  if (num_segments != want_segments) {
    return Status::ParseError("compressed ints: segment count mismatch");
  }
  // Guard count * sizeof(T) and the decode buffer against overflow from a
  // hostile header before any allocation.
  if (count > (static_cast<uint64_t>(1) << 40)) {
    return Status::ParseError("compressed ints: implausible value count");
  }
  const size_t ends_at = 18;
  const uint64_t payload_at =
      ends_at + static_cast<uint64_t>(num_segments) * 8;
  if (payload_at > blob.size()) {
    return Status::ParseError(
        "compressed ints: segment table out of bounds");
  }
  c->count_ = static_cast<size_t>(count);
  c->seg_len_ = seg_len;
  c->num_segments_ = num_segments;
  c->ends_ = blob.data() + ends_at;
  c->payload_ = blob.data() + payload_at;
  c->payload_size_ = blob.size() - static_cast<size_t>(payload_at);
  // Segment end offsets must be monotone and bounded by the payload.
  uint64_t prev_end = 0;
  for (size_t s = 0; s < num_segments; ++s) {
    const uint64_t e = GetU64(c->ends_ + s * 8);
    if (e < prev_end || e > c->payload_size_) {
      return Status::ParseError(
          "compressed ints: segment offsets not monotone within payload");
    }
    prev_end = e;
  }
  c->seg_once_ = std::make_unique<std::once_flag[]>(
      num_segments == 0 ? 1 : num_segments);

  if (!trusted) {
    // One full decode-check pass so every later access is infallible:
    // each segment must decode exactly its value count from exactly its
    // byte range, with every value in [min_value, max_value] and
    // representable in T.
    std::vector<T> scratch(std::min<size_t>(c->seg_len_, c->count_));
    for (size_t s = 0; s < num_segments; ++s) {
      if (!c->DecodeSegment(s, scratch.data())) {
        return Status::ParseError(
            "compressed ints: segment " + std::to_string(s) +
            " failed to decode");
      }
      const size_t begin = s * c->seg_len_;
      const size_t n = std::min(c->count_, begin + c->seg_len_) - begin;
      for (size_t i = 0; i < n; ++i) {
        const auto v = static_cast<int64_t>(scratch[i]);
        if (v < min_value || v > max_value) {
          return Status::ParseError(
              "compressed ints: value out of expected range");
        }
      }
    }
  }
  return std::shared_ptr<const CompressedInts<T>>(std::move(c));
}

template <typename T>
bool CompressedInts<T>::DecodeSegment(size_t s, T* out) const {
  const size_t begin = s * seg_len_;
  const size_t n = std::min(count_, begin + seg_len_) - begin;
  const uint64_t pbegin = s == 0 ? 0 : GetU64(ends_ + (s - 1) * 8);
  const uint64_t pend = GetU64(ends_ + s * 8);
  const uint8_t* p = payload_ + pbegin;
  const uint8_t* end = payload_ + pend;
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t zz;
    if (!GetVarint64(&p, end, &zz)) return false;
    const int64_t v = static_cast<int64_t>(
        static_cast<uint64_t>(prev) +
        static_cast<uint64_t>(ZigZagDecode(zz)));
    if constexpr (std::is_same_v<T, int32_t>) {
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        return false;
      }
    }
    out[i] = static_cast<T>(v);
    prev = v;
  }
  return p == end;  // trailing garbage in a segment is corruption
}

template <typename T>
void CompressedInts<T>::EnsureSegment(size_t s) const {
  std::call_once(alloc_once_, [this] { decoded_.resize(count_); });
  std::call_once(seg_once_[s], [this, s] {
    // Parse() validated every segment, so this decode cannot fail; the
    // defensive check keeps a logic bug from silently serving garbage.
    const bool ok = DecodeSegment(s, decoded_.data() + s * seg_len_);
    (void)ok;
    decoded_segments_.fetch_add(1, std::memory_order_relaxed);
  });
}

template class CompressedInts<int64_t>;
template class CompressedInts<int32_t>;

// ---------------------------------------------------------------------------
// Process-wide defaults
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint32_t> g_compression_defaults{0x3};  // both bits on
}  // namespace

CompressionOptions GetCompressionDefaults() {
  const uint32_t bits = g_compression_defaults.load(std::memory_order_relaxed);
  CompressionOptions opts;
  opts.postings = (bits & 0x1) != 0;
  opts.cold_columns = (bits & 0x2) != 0;
  return opts;
}

void SetCompressionDefaults(const CompressionOptions& opts) {
  g_compression_defaults.store(
      (opts.postings ? 0x1u : 0u) | (opts.cold_columns ? 0x2u : 0u),
      std::memory_order_relaxed);
}

}  // namespace spindle::blockcodec
