/// \file relation.h
/// \brief Immutable relations: a schema plus column data.
///
/// Every Spindle operator consumes and produces whole relations
/// (full materialization, MonetDB/BAT style). Columns are shared between
/// relations wherever an operator does not modify them, so projection and
/// caching are cheap.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace spindle {

class Relation;
using RelationPtr = std::shared_ptr<const Relation>;

/// \brief An immutable table: schema + columns, all of equal length.
class Relation {
 public:
  /// \brief Builds a relation from freshly-built columns.
  /// Fails if column count/types disagree with the schema or lengths differ.
  static Result<RelationPtr> Make(Schema schema, std::vector<Column> columns);

  /// \brief Builds a relation that shares existing column buffers.
  static Result<RelationPtr> MakeShared(Schema schema,
                                        std::vector<ColumnPtr> columns);

  /// \brief An empty relation with the given schema.
  static RelationPtr Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return *columns_[i]; }
  const ColumnPtr& column_ptr(size_t i) const { return columns_[i]; }

  /// \brief Row `row` as a vector of Values (for tests and display).
  std::vector<Value> Row(size_t row) const;

  /// \brief Deep equality: schema plus all cells, order-sensitive.
  bool Equals(const Relation& other) const;

  /// \brief Approximate heap footprint (cache accounting). Each shared
  /// StringDict instance is counted once, no matter how many columns
  /// reference it.
  size_t ByteSize() const;

  /// \brief Heap footprint excluding all shared dicts (the per-relation
  /// part the materialization cache charges unconditionally).
  size_t ByteSizeExcludingDicts() const;

  /// \brief Bytes of memory-mapped (page-cache) storage viewed by this
  /// relation's columns. Disjoint from ByteSize(): mapped snapshot pages
  /// belong to the OS page cache, so charging them as heap would
  /// double-count them in cache budgets and STATS.
  size_t MappedByteSize() const;

  /// \brief Encoded bytes of compressed columns (storage/block_codec.h).
  /// Disjoint from both heap and mapped accounting.
  size_t CompressedByteSize() const;

  /// \brief The distinct StringDict instances referenced by dict-encoded
  /// columns, in first-appearance order.
  std::vector<StringDictPtr> CollectDicts() const;

  /// \brief Pretty-prints up to `max_rows` rows with a header.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Relation(Schema schema, std::vector<ColumnPtr> columns, size_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_;
};

/// \brief Returns a relation whose plain string columns are
/// dictionary-encoded, all sharing one StringDict (so cross-column joins —
/// e.g. triples subject vs object — still compare codes). Columns that are
/// already dict-encoded and non-string columns are shared untouched; if
/// nothing needs encoding the input pointer is returned as-is.
RelationPtr DictEncodeStringColumns(const RelationPtr& rel);

/// \brief Returns a relation whose compressible columns (int64, dict
/// codes) are replaced by their compressed representation
/// (Column::Compressed); the rest are shared untouched. Returns the input
/// pointer when nothing compresses. Logical content is unchanged — reads
/// decode transparently — so callers may swap this in for the original
/// without invalidating anything keyed on content.
RelationPtr CompressColumns(const RelationPtr& rel);

/// \brief Convenience row-at-a-time builder for tests and generators.
///
/// \code
///   RelationBuilder b({{"docID", DataType::kInt64},
///                      {"data", DataType::kString}});
///   b.AddRow({int64_t{1}, std::string("hello world")});
///   RelationPtr rel = b.Build().ValueOrDie();
/// \endcode
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);
  RelationBuilder(std::initializer_list<Field> fields)
      : RelationBuilder(Schema(std::vector<Field>(fields))) {}

  /// \brief Appends one row; the Value types must match the schema.
  Status AddRow(const std::vector<Value>& values);

  /// \brief Direct typed appends, one column at a time (advanced use).
  Column& column(size_t i) { return columns_[i]; }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// \brief Finalizes into an immutable relation; the builder is consumed.
  Result<RelationPtr> Build();

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace spindle
