/// \file string_dict.h
/// \brief Bidirectional string <-> dense-id dictionary.
///
/// This is the building block behind `termdict` (paper §2.1): terms are
/// interned once and the hot ranking path works on int64 term ids. It is
/// also the backing store of dictionary-encoded string Columns, which hold
/// dense 0-based positions into a shared immutable StringDict instead of
/// materialized strings (see docs/column_representations.md).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace spindle {

/// \brief Interns strings, assigning dense ids starting at `first_id`.
///
/// Thread safety: Intern/Lookup/size/ByteSize synchronize on an internal
/// shared_mutex, so a dict still being grown on one thread can be probed
/// from others (the RecodeToShared path does exactly this when parallel
/// operators recode against a dict another query is extending). The
/// positional accessors (StringFor, StringAtPos, HashAtPos, strings())
/// are deliberately lock-free and rely on the build-side ownership
/// invariant: a dict is mutated only single-threaded while its column is
/// being built, and is immutable once published as a StringDictPtr
/// (shared_ptr<const StringDict>). Positional reads are only issued
/// against published dicts.
class StringDict {
 public:
  /// \param first_id the id given to the first interned string. The paper's
  /// termdict uses row_number() which starts at 1, so 1 is the default.
  explicit StringDict(int64_t first_id = 1) : first_id_(first_id) {}

  /// Build-side moves only (the mutex is not movable and the target gets a
  /// fresh one): legal while a single thread owns the dict, per the
  /// ownership invariant above. The interned string_views stay valid
  /// because the vector's heap buffer moves with it.
  StringDict(StringDict&& other) noexcept
      : first_id_(other.first_id_),
        strings_(std::move(other.strings_)),
        hashes_(std::move(other.hashes_)),
        index_(std::move(other.index_)) {}
  StringDict& operator=(StringDict&& other) noexcept {
    first_id_ = other.first_id_;
    strings_ = std::move(other.strings_);
    hashes_ = std::move(other.hashes_);
    index_ = std::move(other.index_);
    return *this;
  }

  /// \brief Bulk factory for snapshot restore: builds a dict whose id
  /// assignment is exactly the order of `strings` (so dictionary codes
  /// saved against the original dict decode bit-identically). `hashes`
  /// must be the memoized HashBytes values saved alongside (validated in
  /// debug builds, trusted in release — the snapshot checksum already
  /// covers them). Fails on duplicate strings or length mismatch.
  static Result<std::shared_ptr<StringDict>> FromIdOrderedStrings(
      int64_t first_id, std::vector<std::string> strings,
      std::vector<uint64_t> hashes);

  /// \brief Returns the id of `s`, interning it if new.
  int64_t Intern(std::string_view s);

  /// \brief Returns the id of `s`, or -1 if not present.
  int64_t Lookup(std::string_view s) const;

  /// \brief The string for an id previously returned by Intern.
  const std::string& StringFor(int64_t id) const {
    return strings_[static_cast<size_t>(id - first_id_)];
  }

  /// \brief The string at 0-based position `pos` (== id - first_id()).
  /// Dictionary-encoded Columns store these positions as codes.
  const std::string& StringAtPos(size_t pos) const { return strings_[pos]; }

  /// \brief Memoized hash of the string at position `pos`; always equal to
  /// HashBytes(StringAtPos(pos)), so plain and dict-encoded columns hash
  /// identically and can meet in the same hash table.
  uint64_t HashAtPos(size_t pos) const { return hashes_[pos]; }

  int64_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int64_t>(strings_.size());
  }
  int64_t first_id() const { return first_id_; }

  /// \brief All interned strings in id order.
  const std::vector<std::string>& strings() const { return strings_; }

  /// \brief Approximate heap footprint (strings, hashes and hash index).
  size_t ByteSize() const;

 private:
  int64_t first_id_;
  /// Guards strings_/hashes_/index_ for the id-keyed operations; see the
  /// class comment for which accessors bypass it.
  mutable std::shared_mutex mu_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;  // HashBytes of strings_, same order
  std::unordered_map<std::string_view, int64_t> index_;  // views into strings_
};

using StringDictPtr = std::shared_ptr<const StringDict>;

}  // namespace spindle
