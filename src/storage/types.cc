#include "storage/types.h"

#include "common/str.h"

namespace spindle {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string ValueToString(const Value& v) {
  switch (ValueType(v)) {
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(v));
    case DataType::kFloat64:
      return FormatDouble(std::get<double>(v));
    case DataType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

}  // namespace spindle
