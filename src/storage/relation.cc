#include "storage/relation.h"

#include <sstream>

namespace spindle {

Result<RelationPtr> Relation::Make(Schema schema,
                                   std::vector<Column> columns) {
  std::vector<ColumnPtr> ptrs;
  ptrs.reserve(columns.size());
  for (auto& c : columns) {
    ptrs.push_back(std::make_shared<const Column>(std::move(c)));
  }
  return MakeShared(std::move(schema), std::move(ptrs));
}

Result<RelationPtr> Relation::MakeShared(Schema schema,
                                         std::vector<ColumnPtr> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_fields()) +
        " fields but " + std::to_string(columns.size()) + " columns given");
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i]->type() != schema.field(i).type) {
      return Status::TypeMismatch(
          "column " + std::to_string(i) + " has type " +
          DataTypeName(columns[i]->type()) + ", schema expects " +
          DataTypeName(schema.field(i).type));
    }
    if (columns[i]->size() != rows) {
      return Status::InvalidArgument("columns have unequal lengths");
    }
  }
  return RelationPtr(
      new Relation(std::move(schema), std::move(columns), rows));
}

RelationPtr Relation::Empty(Schema schema) {
  std::vector<ColumnPtr> cols;
  cols.reserve(schema.num_fields());
  for (const auto& f : schema.fields()) {
    cols.push_back(std::make_shared<const Column>(f.type));
  }
  return RelationPtr(new Relation(std::move(schema), std::move(cols), 0));
}

std::vector<Value> Relation::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c->ValueAt(row));
  return out;
}

bool Relation::Equals(const Relation& other) const {
  if (!schema_.Equals(other.schema_)) return false;
  if (num_rows_ != other.num_rows_) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i]->Equals(*other.columns_[i])) return false;
  }
  return true;
}

size_t Relation::ByteSize() const {
  size_t bytes = ByteSizeExcludingDicts();
  for (const auto& d : CollectDicts()) bytes += d->ByteSize();
  return bytes;
}

size_t Relation::ByteSizeExcludingDicts() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c->ByteSizeExcludingDict();
  return bytes;
}

size_t Relation::MappedByteSize() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c->MappedByteSize();
  return bytes;
}

size_t Relation::CompressedByteSize() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c->CompressedByteSize();
  return bytes;
}

std::vector<StringDictPtr> Relation::CollectDicts() const {
  std::vector<StringDictPtr> dicts;
  for (const auto& c : columns_) {
    if (!c->dict_encoded()) continue;
    bool seen = false;
    for (const auto& d : dicts) {
      if (d == c->dict()) {
        seen = true;
        break;
      }
    }
    if (!seen) dicts.push_back(c->dict());
  }
  return dicts;
}

RelationPtr DictEncodeStringColumns(const RelationPtr& rel) {
  bool any_plain = false;
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const Column& col = rel->column(c);
    if (col.type() == DataType::kString && !col.dict_encoded()) {
      any_plain = true;
      break;
    }
  }
  if (!any_plain) return rel;
  auto dict = std::make_shared<StringDict>();
  std::vector<ColumnPtr> cols;
  cols.reserve(rel->num_columns());
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const Column& col = rel->column(c);
    if (col.type() == DataType::kString && !col.dict_encoded()) {
      cols.push_back(
          std::make_shared<const Column>(col.DictEncode(dict)));
    } else {
      cols.push_back(rel->column_ptr(c));
    }
  }
  auto encoded = Relation::MakeShared(rel->schema(), std::move(cols));
  // Schema and lengths are unchanged, so this cannot fail.
  return encoded.ValueOrDie();
}

RelationPtr CompressColumns(const RelationPtr& rel) {
  bool any = false;
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const Column& col = rel->column(c);
    const bool compressible =
        !col.compressed() &&
        (col.type() == DataType::kInt64 ||
         (col.type() == DataType::kString && col.dict_encoded()));
    if (compressible) {
      any = true;
      break;
    }
  }
  if (!any) return rel;
  std::vector<ColumnPtr> cols;
  cols.reserve(rel->num_columns());
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const Column& col = rel->column(c);
    if (!col.compressed() &&
        (col.type() == DataType::kInt64 ||
         (col.type() == DataType::kString && col.dict_encoded()))) {
      cols.push_back(std::make_shared<const Column>(col.Compressed()));
    } else {
      cols.push_back(rel->column_ptr(c));
    }
  }
  // Schema and lengths are unchanged, so this cannot fail.
  return Relation::MakeShared(rel->schema(), std::move(cols)).ValueOrDie();
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream out;
  out << schema_.ToString() << " [" << num_rows_ << " rows]\n";
  size_t n = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << " | ";
      out << columns_[c]->ToStringAt(r);
    }
    out << "\n";
  }
  if (n < num_rows_) out << "... (" << (num_rows_ - n) << " more)\n";
  return out.str();
}

RelationBuilder::RelationBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status RelationBuilder::AddRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " fields");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    SPINDLE_RETURN_IF_ERROR(columns_[i].AppendValue(values[i]));
  }
  return Status::OK();
}

Result<RelationPtr> RelationBuilder::Build() {
  return Relation::Make(std::move(schema_), std::move(columns_));
}

}  // namespace spindle
